"""Trace store subsystem tests.

Pins the tentpole guarantees of the persistent memory-mapped trace store:

* a saved trace memory-maps back with zero-copy columns and simulating it
  yields bit-identical metrics to the in-memory build;
* headers are versioned and endianness-tagged, and incompatible entries are
  rejected instead of mis-decoded;
* ChampSim-style text traces (plain and gzipped) import into the store and
  become first-class ``imported.*`` catalog workloads runnable through the
  campaign engine;
* the catalog/engine ``store=`` fast path serves store hits without running
  a generator (asserted via the generator-invocation counter);
* the ``repro trace`` CLI subcommands work end to end;
* the per-process graph memo is a bounded LRU and the result-cache GC
  supports dry runs.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.experiments.common import CampaignCache, ExperimentConfig
from repro.sim.engine import (
    CampaignEngine,
    build_workload_trace,
    generator_invocations,
    reset_generator_invocations,
)
from repro.sim.result_cache import ResultCache
from repro.sim.scenarios import build_scenario
from repro.sim.single_core import run_single_core
from repro.traces.ingest import (
    TraceParseError,
    import_champsim_trace,
    parse_champsim_lines,
    read_champsim_trace,
)
from repro.traces.store import (
    TRACE_FORMAT_VERSION,
    TraceStore,
    TraceStoreError,
    load_trace,
    read_meta,
    save_trace,
    workload_key,
)
from repro.traces.trace import KIND_LOAD, KIND_NON_MEM, KIND_STORE, Trace
from repro.workloads.catalog import default_catalog, register_imported_workloads
from repro.workloads.spec_like import spec_like_trace

from pathlib import Path

FIXTURES = Path(__file__).parent / "fixtures"
CHAMPSIM_FIXTURE = FIXTURES / "champsim_small.trace"
CHAMPSIM_FIXTURE_GZ = FIXTURES / "champsim_small.trace.gz"


def _is_memory_mapped(array) -> bool:
    """True when ``array`` is (a zero-copy view of) a ``numpy.memmap``."""
    while isinstance(array, np.ndarray):
        if isinstance(array, np.memmap):
            return True
        array = array.base
    return False


# ----------------------------------------------------------------------
# Round trip: save -> mmap -> identical columns and metrics
# ----------------------------------------------------------------------
class TestRoundTrip:
    def test_columns_survive_round_trip(self, tmp_path):
        trace = spec_like_trace("mcf_like", num_memory_accesses=800)
        save_trace(trace, tmp_path / "entry")
        loaded = load_trace(tmp_path / "entry")
        for original, mapped in zip(trace.columns(), loaded.columns()):
            assert np.array_equal(original, mapped)
        assert loaded.name == trace.name
        assert loaded.metadata["pattern"] == "pointer_chase"

    def test_loaded_columns_are_memory_mapped(self, tmp_path):
        trace = spec_like_trace("lbm_like", num_memory_accesses=400)
        save_trace(trace, tmp_path / "entry")
        loaded = load_trace(tmp_path / "entry")
        for column in loaded.columns():
            assert _is_memory_mapped(column)
        # Views stay zero-copy on top of the maps.
        warmup, measured = loaded.split(0.25)
        assert np.shares_memory(measured.columns()[0], loaded.columns()[0])
        assert np.shares_memory(warmup.columns()[0], loaded.columns()[0])

    def test_simulating_stored_trace_is_bit_identical(self, tmp_path):
        trace = build_workload_trace("bfs.urand", 2000, "tiny")
        save_trace(trace, tmp_path / "entry")
        stored = load_trace(tmp_path / "entry")
        in_memory = run_single_core(
            trace, build_scenario("tlp", l1d_prefetcher="ipcp"),
            warmup_fraction=0.25,
        )
        mapped = run_single_core(
            stored, build_scenario("tlp", l1d_prefetcher="ipcp"),
            warmup_fraction=0.25,
        )
        assert dataclasses.asdict(in_memory) == dataclasses.asdict(mapped)

    def test_store_get_put_contains_remove(self, tmp_path):
        store = TraceStore(tmp_path / "store")
        trace = spec_like_trace("sphinx_like", num_memory_accesses=300)
        key = workload_key("spec.sphinx_like", 300)
        assert store.get(key) is None
        store.put(key, trace)
        assert key in store
        assert store.keys() == [key]
        assert store.entry_size_bytes(key) > 0
        loaded = store.get(key)
        assert np.array_equal(loaded.columns()[1], trace.columns()[1])
        assert store.remove(key)
        assert store.get(key) is None

    def test_empty_trace_round_trips(self, tmp_path):
        empty = Trace("empty")
        save_trace(empty, tmp_path / "entry")
        loaded = load_trace(tmp_path / "entry")
        assert len(loaded) == 0

    def test_losing_the_replace_race_is_success(self, tmp_path, monkeypatch):
        """A concurrent writer renaming an identical entry into place
        between save_trace's rmtree and os.replace must not crash the
        loser (content-hash keys make the entries byte-identical)."""
        import shutil

        from repro.traces import store as store_module

        trace = spec_like_trace("lbm_like", num_memory_accesses=100)
        entry = tmp_path / "entry"
        save_trace(trace, entry)

        # Skip only the destination rmtree, so the existing entry survives
        # and os.replace hits a non-empty directory -- the race window made
        # permanent; the loser's temp-dir cleanup still runs.
        real_rmtree = shutil.rmtree

        def selective_rmtree(path, *args, **kwargs):
            if Path(path) == entry:
                return
            return real_rmtree(path, *args, **kwargs)

        monkeypatch.setattr(store_module.shutil, "rmtree", selective_rmtree)
        save_trace(trace, entry)  # must not raise
        monkeypatch.undo()
        loaded = load_trace(entry)
        assert np.array_equal(loaded.columns()[1], trace.columns()[1])
        # The loser's temp directory was cleaned up.
        assert [p.name for p in tmp_path.iterdir()] == ["entry"]


# ----------------------------------------------------------------------
# Header validation: version / endianness / truncation
# ----------------------------------------------------------------------
class TestHeaderValidation:
    def _entry(self, tmp_path):
        trace = spec_like_trace("lbm_like", num_memory_accesses=100)
        entry = tmp_path / "entry"
        save_trace(trace, entry)
        return entry

    def _rewrite_meta(self, entry, **overrides):
        meta_path = entry / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta.update(overrides)
        meta_path.write_text(json.dumps(meta))

    def test_version_mismatch_rejected(self, tmp_path):
        entry = self._entry(tmp_path)
        self._rewrite_meta(entry, format_version=TRACE_FORMAT_VERSION + 1)
        with pytest.raises(TraceStoreError, match="format version"):
            load_trace(entry)

    def test_big_endian_entry_rejected(self, tmp_path):
        entry = self._entry(tmp_path)
        self._rewrite_meta(entry, endianness="big")
        with pytest.raises(TraceStoreError, match="endian"):
            read_meta(entry)

    def test_foreign_column_dtype_rejected(self, tmp_path):
        entry = self._entry(tmp_path)
        meta = json.loads((entry / "meta.json").read_text())
        meta["columns"]["pc"]["dtype"] = ">i8"
        (entry / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(TraceStoreError, match="dtype"):
            load_trace(entry)

    def test_truncated_column_rejected(self, tmp_path):
        entry = self._entry(tmp_path)
        payload = (entry / "vaddr.bin").read_bytes()
        (entry / "vaddr.bin").write_bytes(payload[:-8])
        with pytest.raises(TraceStoreError, match="bytes"):
            load_trace(entry)

    def test_store_treats_bad_entries_as_misses(self, tmp_path):
        store = TraceStore(tmp_path / "store")
        trace = spec_like_trace("lbm_like", num_memory_accesses=100)
        store.put("k1", trace)
        self._rewrite_meta(store.path("k1"), format_version=99)
        assert store.get("k1") is None
        assert store.misses == 1


# ----------------------------------------------------------------------
# Memory-access-budget truncation (imported traces)
# ----------------------------------------------------------------------
class TestMemoryTruncation:
    def test_truncates_after_budget_th_memory_access(self):
        trace = spec_like_trace("gcc_like", num_memory_accesses=200)
        view = trace.truncated_to_memory_accesses(50)
        assert view.num_memory_accesses == 50
        _, _, kind = view.columns()
        memory_positions = np.flatnonzero(kind != KIND_NON_MEM)
        # The view ends right at the 50th memory record: no trailing compute.
        assert memory_positions[-1] == len(kind) - 1
        assert np.shares_memory(view.columns()[0], trace.columns()[0])

    def test_budget_larger_than_trace_returns_whole_trace(self):
        trace = spec_like_trace("gcc_like", num_memory_accesses=60)
        view = trace.truncated_to_memory_accesses(10_000)
        assert len(view) == len(trace)

    def test_zero_budget_and_negative(self):
        trace = spec_like_trace("gcc_like", num_memory_accesses=60)
        assert len(trace.truncated_to_memory_accesses(0)) == 0
        with pytest.raises(ValueError):
            trace.truncated_to_memory_accesses(-1)


# ----------------------------------------------------------------------
# ChampSim-style ingestion
# ----------------------------------------------------------------------
class TestChampsimIngestion:
    def test_parse_kinds_comments_and_bases(self):
        records = list(parse_champsim_lines([
            "# comment",
            "",
            "0x400000 0x7f0000000000 R",
            "4194308 139637976727616 STORE",
            "0x400008 0x7f0000000080   # trailing comment, kind defaults to load",
        ]))
        assert records == [
            (0x400000, 0x7F0000000000, KIND_LOAD),
            (4194308, 139637976727616, KIND_STORE),
            (0x400008, 0x7F0000000080, KIND_LOAD),
        ]

    @pytest.mark.parametrize("bad_line", [
        "0x400000",                      # too few fields
        "0x400000 0x1 0x2 0x3",          # too many fields
        "xyz 0x1 R",                     # bad integer
        "0x400000 0x1 Q",                # unknown kind
    ])
    def test_parse_errors(self, bad_line):
        with pytest.raises(TraceParseError):
            list(parse_champsim_lines([bad_line]))

    def test_fixture_imports_plain_and_gzip_identically(self, tmp_path):
        plain = read_champsim_trace(CHAMPSIM_FIXTURE)
        gzipped = read_champsim_trace(CHAMPSIM_FIXTURE_GZ)
        for a, b in zip(plain.columns(), gzipped.columns()):
            assert np.array_equal(a, b)
        assert plain.num_memory_accesses == 240
        assert plain.num_stores > 0

    def test_compute_per_access_interleaves_non_mem(self):
        trace = read_champsim_trace(CHAMPSIM_FIXTURE, compute_per_access=2)
        assert len(trace) == 3 * trace.num_memory_accesses
        assert trace.metadata["compute_per_access"] == 2

    def test_import_registers_catalog_workload(self, tmp_path):
        store = TraceStore(tmp_path / "store")
        workload, key, trace = import_champsim_trace(
            CHAMPSIM_FIXTURE, trace_store=store, name="fixture"
        )
        assert workload == "imported.fixture"
        assert store.imported_workloads() == {
            "imported.fixture": {
                "key": key,
                "source": str(CHAMPSIM_FIXTURE),
                "records": 240,
                "memory_accesses": 240,
                "compute_per_access": 0,
            }
        }
        # The served trace is the memory-mapped stored copy.
        assert _is_memory_mapped(trace.columns()[0])
        assert store.resolve("imported.fixture") == key

    def test_imported_workload_runs_through_engine(self, tmp_path):
        store = TraceStore(tmp_path / "store")
        import_champsim_trace(CHAMPSIM_FIXTURE_GZ, trace_store=store, name="fixture",
                              compute_per_access=2)
        trace = build_workload_trace(
            "imported.fixture", 100, trace_store=store
        )
        assert trace.num_memory_accesses == 100
        result = run_single_core(
            trace, build_scenario("hermes", l1d_prefetcher="ipcp"),
            warmup_fraction=0.25,
        )
        assert result.instructions > 0

    def test_missing_imported_workload_raises(self, tmp_path):
        store = TraceStore(tmp_path / "store")
        with pytest.raises(KeyError, match="repro trace import"):
            build_workload_trace("imported.nope", 100, trace_store=store)

    def test_max_records_yields_distinct_store_entries(self, tmp_path):
        store = TraceStore(tmp_path / "store")
        _, full_key, full = import_champsim_trace(
            CHAMPSIM_FIXTURE, trace_store=store, name="full"
        )
        _, head_key, head = import_champsim_trace(
            CHAMPSIM_FIXTURE, trace_store=store, name="head", max_records=50
        )
        assert full_key != head_key
        assert full.num_memory_accesses == 240
        assert head.num_memory_accesses == 50
        # Both imports coexist in the store and registry.
        assert store.load_imported("imported.full").num_memory_accesses == 240
        assert store.load_imported("imported.head").num_memory_accesses == 50

    def test_reimporting_different_content_changes_point_cache_key(self, tmp_path):
        """Result-cache keys of imported-workload points follow the trace
        content, so re-importing a different file under the same name can
        never serve stale cached results."""
        from repro.sim.engine import single_core_point

        store = TraceStore(tmp_path / "store")
        source = tmp_path / "app.trace"
        source.write_text("0x400000 0x1000 R\n0x400004 0x2000 W\n")
        import_champsim_trace(source, trace_store=store, name="app")

        def point():
            return single_core_point(
                "imported.app", "tlp", "ipcp", memory_accesses=100,
                warmup_fraction=0.25, trace_store=store,
            )

        first_key = point().key()
        assert point().key() == first_key  # deterministic
        # Same name, different trace content.
        source.write_text("0x400000 0x9000 R\n0x400004 0xa000 R\n")
        import_champsim_trace(source, trace_store=store, name="app")
        assert point().key() != first_key

    def test_generated_point_cache_keys_unchanged_by_trace_keys_field(self):
        """Generated-only points omit trace_keys from the key payload, so
        every pre-store result cache stays valid (schema not bumped)."""
        import hashlib
        import json as json_module

        from repro.sim.engine import CACHE_SCHEMA_VERSION, single_core_point

        point = single_core_point(
            "bfs.urand", "tlp", "ipcp", memory_accesses=100,
            warmup_fraction=0.25, gap_scale="tiny",
        )
        assert point.trace_keys is None
        legacy_payload = {
            "kind": point.kind,
            "workloads": list(point.workloads),
            "scheme": point.scheme,
            "l1d_prefetcher": point.l1d_prefetcher,
            "memory_accesses": point.memory_accesses,
            "warmup_fraction": point.warmup_fraction,
            "gap_scale": point.gap_scale,
            "system_json": point.system_json,
            "mix_name": None,
            "schema": CACHE_SCHEMA_VERSION,
        }
        legacy_key = hashlib.sha256(
            json_module.dumps(legacy_payload, sort_keys=True).encode("utf-8")
        ).hexdigest()[:32]
        assert point.key() == legacy_key

    def test_imported_workload_through_campaign_cache(self, tmp_path):
        """An imported trace is a first-class workload for the figure
        harness machinery (CampaignCache.single_core)."""
        store = TraceStore(tmp_path / "store")
        import_champsim_trace(CHAMPSIM_FIXTURE, trace_store=store, name="fixture",
                              compute_per_access=2)
        config = ExperimentConfig(
            gap_workloads=(),
            spec_workloads=(),
            imported_workloads=("imported.fixture",),
            memory_accesses=200,
            l1d_prefetchers=("ipcp",),
        )
        engine = CampaignEngine(
            result_cache=ResultCache(tmp_path / "rc"), jobs=1, trace_store=store
        )
        cache = CampaignCache(config, engine=engine)
        assert cache.config.suite_of("imported.fixture") == "imported"
        baseline = cache.single_core("imported.fixture", "baseline")
        tlp = cache.single_core("imported.fixture", "tlp")
        assert baseline.instructions == tlp.instructions > 0


# ----------------------------------------------------------------------
# Catalog / engine store fast path
# ----------------------------------------------------------------------
class TestStoreFastPath:
    def test_catalog_build_hits_store_second_time(self, tmp_path):
        store = TraceStore(tmp_path / "store")
        catalog = default_catalog(gap_scale="tiny")
        first = catalog.build("spec.mcf_like", 500, trace_store=store)
        # The miss built and persisted the trace, then served the stored
        # copy (one miss, one hit).
        assert store.misses == 1
        hits_after_build = store.hits
        second = catalog.build("spec.mcf_like", 500, trace_store=store)
        assert store.misses == 1
        assert store.hits == hits_after_build + 1
        assert _is_memory_mapped(second.columns()[0])
        for a, b in zip(first.columns(), second.columns()):
            assert np.array_equal(a, b)
        plain = catalog.build("spec.mcf_like", 500)
        assert np.array_equal(plain.columns()[1], second.columns()[1])

    def test_catalog_registers_imported_suite(self, tmp_path):
        store = TraceStore(tmp_path / "store")
        import_champsim_trace(CHAMPSIM_FIXTURE, trace_store=store, name="fixture")
        catalog = default_catalog(gap_scale="tiny", trace_store=store)
        assert "imported.fixture" in catalog.names("imported")
        trace = catalog.build("imported.fixture", 64, trace_store=store)
        assert trace.num_memory_accesses == 64
        assert catalog.get("imported.fixture").suite == "imported"
        assert "imported" in catalog.suites()

    def test_workload_key_distinguishes_scale_but_not_for_spec(self):
        assert workload_key("bfs.urand", 1000, "tiny") != workload_key(
            "bfs.urand", 1000, "medium"
        )
        assert workload_key("spec.mcf_like", 1000, "tiny") == workload_key(
            "spec.mcf_like", 1000, "medium"
        )
        assert workload_key("bfs.urand", 1000, "tiny") != workload_key(
            "bfs.urand", 2000, "tiny"
        )

    def test_generator_runs_once_across_engines(self, tmp_path):
        store = TraceStore(tmp_path / "store")
        reset_generator_invocations()
        first = build_workload_trace("bfs.urand", 600, "tiny", trace_store=store)
        assert generator_invocations() == 1
        second = build_workload_trace("bfs.urand", 600, "tiny", trace_store=store)
        assert generator_invocations() == 1  # store hit: no generator work
        assert _is_memory_mapped(second.columns()[0])
        for a, b in zip(first.columns(), second.columns()):
            assert np.array_equal(a, b)

    def test_warm_store_campaign_skips_generators_entirely(self, tmp_path):
        """Cold-result-cache campaign points over a warm trace store do no
        generator work at all (the acceptance criterion)."""
        store = TraceStore(tmp_path / "store")
        config = ExperimentConfig(
            gap_workloads=("bfs.urand",),
            spec_workloads=("spec.mcf_like",),
            memory_accesses=500,
            multicore_memory_accesses=400,
            l1d_prefetchers=("ipcp",),
            gap_scale="tiny",
        )

        def run_campaign(result_dir):
            engine = CampaignEngine(
                result_cache=ResultCache(tmp_path / result_dir),
                jobs=1,
                trace_store=store,
            )
            cache = CampaignCache(config, engine=engine)
            cache.run_campaign(schemes=("tlp",), include_multicore=True)
            return engine

        reset_generator_invocations()
        first = run_campaign("rc1")
        assert first.simulations_run > 0
        assert generator_invocations() > 0

        reset_generator_invocations()
        second = run_campaign("rc2")  # fresh result cache: all points simulate
        assert second.simulations_run == first.simulations_run
        assert generator_invocations() == 0

    def test_store_and_storeless_campaigns_agree(self, tmp_path):
        config = ExperimentConfig(
            gap_workloads=("bfs.urand",),
            spec_workloads=("spec.omnetpp_like",),
            memory_accesses=400,
            l1d_prefetchers=("ipcp",),
            gap_scale="tiny",
        )
        with_store = CampaignCache(config, engine=CampaignEngine(
            result_cache=None, jobs=1, trace_store=TraceStore(tmp_path / "ts")
        ))
        without_store = CampaignCache(config, engine=CampaignEngine(
            result_cache=None, jobs=1
        ))
        for workload in config.workloads():
            for scheme in ("baseline", "tlp"):
                a = with_store.single_core(workload, scheme)
                b = without_store.single_core(workload, scheme)
                assert dataclasses.asdict(a) == dataclasses.asdict(b), (
                    workload, scheme
                )


# ----------------------------------------------------------------------
# CLI smoke
# ----------------------------------------------------------------------
class TestTraceCli:
    def test_build_ls_info_rm(self, tmp_path, capsys):
        from repro.cli import main

        store_dir = str(tmp_path / "store")
        assert main(["trace", "--dir", store_dir, "build",
                     "--workload", "spec.lbm_like", "--accesses", "300"]) == 0
        assert "stored spec.lbm_like" in capsys.readouterr().out

        assert main(["trace", "--dir", store_dir, "ls"]) == 0
        output = capsys.readouterr().out
        assert "1 traces" in output and "spec.lbm_like" in output

        key = workload_key("spec.lbm_like", 300)
        assert main(["trace", "--dir", store_dir, "info", key]) == 0
        output = capsys.readouterr().out
        assert "format_version" in output and "little" in output

        assert main(["trace", "--dir", store_dir, "rm", key]) == 0
        assert main(["trace", "--dir", store_dir, "ls"]) == 0
        assert "0 traces" in capsys.readouterr().out

    def test_import_and_info_by_name(self, tmp_path, capsys):
        from repro.cli import main

        store_dir = str(tmp_path / "store")
        assert main(["trace", "--dir", store_dir, "import",
                     str(CHAMPSIM_FIXTURE_GZ), "--name", "fixture"]) == 0
        assert "imported.fixture" in capsys.readouterr().out
        assert main(["trace", "--dir", store_dir, "info",
                     "imported.fixture"]) == 0
        assert "memory_accesses" in capsys.readouterr().out
        assert main(["trace", "--dir", store_dir, "rm",
                     "imported.fixture"]) == 0
        assert "unregistered imported.fixture" in capsys.readouterr().out

    def test_import_missing_file_fails(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["trace", "--dir", str(tmp_path / "s"), "import",
                     str(tmp_path / "nope.trace")]) == 1
        assert "import failed" in capsys.readouterr().out

    def test_info_unknown_name_fails(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["trace", "--dir", str(tmp_path / "s"), "info", "nope"]) == 1

    def test_campaign_include_imported_smoke(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main
        from repro.traces.store import TRACE_DIR_ENV
        from repro.sim.result_cache import CACHE_DIR_ENV

        monkeypatch.setenv(TRACE_DIR_ENV, str(tmp_path / "store"))
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "rc"))
        assert main(["trace", "import", str(CHAMPSIM_FIXTURE),
                     "--name", "fixture", "--compute-per-access", "2"]) == 0
        capsys.readouterr()
        assert main(["campaign", "--include-imported", "--accesses", "200",
                     "--schemes", "tlp", "--prefetchers", "ipcp",
                     "--jobs", "1", "--list"]) == 0
        output = capsys.readouterr().out
        assert "imported.fixture/tlp/ipcp" in output


# ----------------------------------------------------------------------
# Trace-store GC (size-capped sweep mirroring `repro cache gc`)
# ----------------------------------------------------------------------
class TestTraceStoreGc:
    def _populated_store(self, tmp_path) -> tuple[TraceStore, list[str]]:
        """A store with three entries whose header mtimes are 0/1/2."""
        import os

        store = TraceStore(tmp_path / "store")
        keys = []
        for index, budget in enumerate((200, 250, 300)):
            trace = spec_like_trace("lbm_like", num_memory_accesses=budget)
            key = workload_key("spec.lbm_like", budget)
            store.put(key, trace)
            meta_path = store.path(key) / "meta.json"
            os.utime(meta_path, (index, index))
            keys.append(key)
        return store, keys

    def test_gc_evicts_oldest_first(self, tmp_path):
        store, keys = self._populated_store(tmp_path)
        newest_size = store.entry_size_bytes(keys[2])
        removed, freed = store.gc(newest_size + store.entry_size_bytes(keys[1]))
        assert removed == 1
        assert not store.contains(keys[0])  # oldest mtime went first
        assert store.contains(keys[1]) and store.contains(keys[2])
        assert freed > 0
        assert store.size_bytes() <= newest_size + store.entry_size_bytes(keys[1])

    def test_gc_dry_run_deletes_nothing(self, tmp_path):
        store, keys = self._populated_store(tmp_path)
        before = store.size_bytes()
        removed, freed = store.gc(0, dry_run=True)
        assert removed == 3
        assert freed == before
        assert store.keys() == sorted(keys)
        assert store.size_bytes() == before

    def test_gc_unregisters_evicted_imported_traces(self, tmp_path):
        import os

        store = TraceStore(tmp_path / "store")
        _, key, _ = import_champsim_trace(
            CHAMPSIM_FIXTURE, trace_store=store, name="fixture"
        )
        os.utime(store.path(key) / "meta.json", (0, 0))
        store.put(
            workload_key("spec.lbm_like", 400),
            spec_like_trace("lbm_like", num_memory_accesses=400),
        )
        removed, _ = store.gc(store.entry_size_bytes(workload_key("spec.lbm_like", 400)))
        assert removed == 1
        assert "imported.fixture" not in store.imported_workloads()
        assert store.resolve("imported.fixture") is None

    def test_gc_noop_when_under_cap(self, tmp_path):
        store, keys = self._populated_store(tmp_path)
        assert store.gc(store.size_bytes() + 1) == (0, 0)
        assert store.keys() == sorted(keys)

    def test_cli_gc_and_dry_run(self, tmp_path, capsys):
        from repro.cli import main

        store, _ = self._populated_store(tmp_path)
        store_dir = str(store.directory)
        assert main(["trace", "--dir", store_dir, "gc",
                     "--max-mb", "0.001", "--dry-run"]) == 0
        output = capsys.readouterr().out
        assert "would evict" in output and "dry run" in output
        assert len(store.keys()) == 3
        assert main(["trace", "--dir", store_dir, "gc", "--max-mb", "0.001"]) == 0
        output = capsys.readouterr().out
        assert "evicted" in output
        assert store.size_bytes() <= 1024


# ----------------------------------------------------------------------
# xz-compressed ChampSim ingestion
# ----------------------------------------------------------------------
class TestXzIngestion:
    @pytest.fixture()
    def xz_fixture(self, tmp_path) -> Path:
        """The committed plain fixture, xz-compressed on the fly."""
        import lzma

        path = tmp_path / "champsim_small.trace.xz"
        path.write_bytes(lzma.compress(CHAMPSIM_FIXTURE.read_bytes()))
        return path

    def test_xz_import_identical_to_plain(self, tmp_path, xz_fixture):
        plain = read_champsim_trace(CHAMPSIM_FIXTURE, name="fixture")
        compressed = read_champsim_trace(xz_fixture, name="fixture")
        assert len(plain) == len(compressed)
        for a, b in zip(plain.columns(), compressed.columns()):
            assert (a == b).all()

    def test_xz_default_name_strips_suffixes(self, xz_fixture):
        trace = read_champsim_trace(xz_fixture)
        assert trace.name == "champsim_small"

    def test_xz_registers_catalog_workload(self, tmp_path, xz_fixture):
        store = TraceStore(tmp_path / "store")
        workload, key, trace = import_champsim_trace(
            xz_fixture, trace_store=store, name="xzfixture"
        )
        assert workload == "imported.xzfixture"
        assert store.resolve("imported.xzfixture") == key
        assert trace.num_memory_accesses > 0

    def test_cli_imports_xz(self, tmp_path, xz_fixture, capsys):
        from repro.cli import main

        assert main(["trace", "--dir", str(tmp_path / "store"), "import",
                     str(xz_fixture), "--name", "xzcli"]) == 0
        assert "imported.xzcli" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Graph memo LRU bound
# ----------------------------------------------------------------------
class TestGraphMemoLru:
    def test_memo_is_bounded_and_evicts_least_recently_used(self):
        from repro.workloads import graphs

        graphs.clear_graph_memo()
        limit = graphs._GRAPH_MEMO_LIMIT
        for seed in range(limit):
            graphs.generate_graph("urand", scale="tiny", seed=seed)
        assert len(graphs._GRAPH_MEMO) == limit
        # Touch seed 0 so it becomes most recently used, then overflow.
        keep = graphs.generate_graph("urand", scale="tiny", seed=0)
        graphs.generate_graph("road", scale="tiny", seed=99)
        assert len(graphs._GRAPH_MEMO) == limit
        assert ("urand", "tiny", 0) in graphs._GRAPH_MEMO
        assert ("urand", "tiny", 1) not in graphs._GRAPH_MEMO  # LRU victim
        assert graphs.generate_graph("urand", scale="tiny", seed=0) is keep
        graphs.clear_graph_memo()


# ----------------------------------------------------------------------
# Result-cache GC dry run
# ----------------------------------------------------------------------
def _dummy_result(workload: str):
    from repro.sim.results import SingleCoreResult

    return SingleCoreResult(
        workload=workload,
        scenario="baseline",
        instructions=1000,
        cycles=100.0,
        ipc=10.0,
        average_load_latency=1.0,
        dram_transactions=0,
        dram_transactions_by_source={},
        mpki_by_level={},
        l1d_prefetches_issued=0,
        l1d_prefetches_filtered=0,
        l1d_prefetch_accuracy=0.0,
        useful_l1d_prefetches=0,
        useless_l1d_prefetches=0,
        accurate_prefetch_source={},
        inaccurate_prefetch_source={},
        offchip_prediction_location={},
        speculative_requests=0,
        delayed_predictions_saved=0,
        served_by={},
    )


def test_result_cache_gc_dry_run_reports_without_deleting(tmp_path):
    import os
    import time

    cache = ResultCache(tmp_path / "cache")
    for index in range(6):
        key = f"k{index}"
        cache.put(key, _dummy_result(key))
        stamp = time.time() - 1000 + index
        os.utime(cache.directory / f"{key}.json", (stamp, stamp))
    entry_size = (cache.directory / "k0.json").stat().st_size
    removed, freed = cache.gc(3 * entry_size, dry_run=True)
    assert (removed, freed) == (3, 3 * entry_size)
    # Nothing was actually deleted.
    assert len(cache.entries()) == 6
    # A real sweep then evicts exactly what the dry run predicted.
    assert cache.gc(3 * entry_size) == (removed, freed)
    assert cache.entries() == ["k3", "k4", "k5"]


def test_merge_reports_bytes_copied(tmp_path):
    source = ResultCache(tmp_path / "src")
    source.put("k1", _dummy_result("a"))
    source.put("k2", _dummy_result("b"))
    expected = sum(
        (tmp_path / "src" / f"{key}.json").stat().st_size for key in ("k1", "k2")
    )
    destination = ResultCache(tmp_path / "dst")
    copied, skipped, unreadable, bytes_copied = destination.merge_from(
        tmp_path / "src"
    )
    assert (copied, skipped, unreadable) == (2, 0, 0)
    assert bytes_copied == expected
