"""Integration tests: scenario building, single-core and multi-core drivers."""

import pytest

from repro.common.config import cascade_lake_multi_core, cascade_lake_single_core
from repro.core.flp import FirstLevelPerceptron
from repro.core.slp import SecondLevelPerceptron
from repro.predictors.hermes import HermesPredictor
from repro.prefetchers.berti import BertiPrefetcher
from repro.prefetchers.ipcp import IPCPPrefetcher
from repro.prefetchers.ppf import PerceptronPrefetchFilter
from repro.sim.multi_core import run_multicore_mix
from repro.sim.scenarios import SCHEMES, Scenario, build_hierarchy, build_scenario
from repro.sim.single_core import run_single_core


class TestScenarioBuilding:
    def test_all_schemes_buildable(self):
        for scheme in SCHEMES:
            hierarchy = build_hierarchy(build_scenario(scheme))
            assert hierarchy is not None

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            build_scenario("magic")

    def test_scenario_name(self):
        scenario = build_scenario("tlp", l1d_prefetcher="berti")
        assert scenario.name == "tlp/berti"

    def test_baseline_has_no_predictor_or_filter(self):
        hierarchy = build_hierarchy(build_scenario("baseline"))
        from repro.predictors.base import NullOffChipPredictor

        assert isinstance(hierarchy.offchip_predictor, NullOffChipPredictor)
        assert hierarchy.l1d_prefetch_filter is None
        assert hierarchy.l2_prefetch_filter is None
        assert isinstance(hierarchy.l1d_prefetcher, IPCPPrefetcher)

    def test_hermes_scheme_attaches_hermes(self):
        hierarchy = build_hierarchy(build_scenario("hermes"))
        assert isinstance(hierarchy.offchip_predictor, HermesPredictor)

    def test_ppf_scheme_attaches_filter_at_l2(self):
        hierarchy = build_hierarchy(build_scenario("ppf"))
        assert isinstance(hierarchy.l2_prefetch_filter, PerceptronPrefetchFilter)

    def test_tlp_scheme_attaches_flp_and_slp(self):
        hierarchy = build_hierarchy(build_scenario("tlp"))
        assert isinstance(hierarchy.offchip_predictor, FirstLevelPerceptron)
        assert isinstance(hierarchy.l1d_prefetch_filter, SecondLevelPerceptron)

    def test_berti_prefetcher_selected(self):
        hierarchy = build_hierarchy(build_scenario("baseline", l1d_prefetcher="berti"))
        assert isinstance(hierarchy.l1d_prefetcher, BertiPrefetcher)

    def test_prefetcher_7kb_enlarges_tables(self):
        hierarchy = build_hierarchy(build_scenario("prefetcher_7kb"))
        assert hierarchy.l1d_prefetcher.ip_table_entries > IPCPPrefetcher().ip_table_entries

    def test_hermes_7kb_enlarges_tables(self):
        small = HermesPredictor()
        hierarchy = build_hierarchy(build_scenario("hermes_7kb"))
        assert hierarchy.offchip_predictor.storage_kib() > small.storage_kib()

    def test_ablation_schemes_attach_expected_components(self):
        slp_only = build_hierarchy(build_scenario("slp"))
        from repro.predictors.base import NullOffChipPredictor

        assert isinstance(slp_only.offchip_predictor, NullOffChipPredictor)
        assert isinstance(slp_only.l1d_prefetch_filter, SecondLevelPerceptron)
        tsp = build_hierarchy(build_scenario("selective_tsp"))
        assert tsp.offchip_predictor.selective_delay is True


class TestSingleCoreDriver:
    def test_baseline_run_produces_sane_metrics(self, small_random_trace):
        result = run_single_core(small_random_trace, build_scenario("baseline"))
        assert result.instructions > 0
        assert 0.0 < result.ipc < 4.0
        assert result.dram_transactions > 0
        assert result.mpki_by_level["L1D"] >= result.mpki_by_level["LLC"]

    def test_warmup_fraction_validated(self, small_random_trace):
        with pytest.raises(ValueError):
            run_single_core(small_random_trace, build_scenario("baseline"), warmup_fraction=1.0)

    def test_results_deterministic(self, small_random_trace):
        first = run_single_core(small_random_trace, build_scenario("baseline"))
        second = run_single_core(small_random_trace, build_scenario("baseline"))
        assert first.ipc == pytest.approx(second.ipc)
        assert first.dram_transactions == second.dram_transactions

    def test_hermes_issues_speculative_requests(self, small_chase_trace):
        result = run_single_core(small_chase_trace, build_scenario("hermes"))
        assert result.speculative_requests > 0

    def test_tlp_filters_prefetches(self, small_random_trace):
        baseline = run_single_core(small_random_trace, build_scenario("baseline"))
        tlp = run_single_core(small_random_trace, build_scenario("tlp"))
        assert (
            tlp.l1d_prefetches_filtered > 0
            or tlp.l1d_prefetches_issued <= baseline.l1d_prefetches_issued
        )

    def test_gap_trace_runs_all_schemes(self, small_gap_trace):
        for scheme in ("baseline", "hermes", "ppf", "tlp"):
            result = run_single_core(small_gap_trace, build_scenario(scheme))
            assert result.instructions > 0

    def test_prefetch_accuracy_in_unit_range(self, small_stream_trace):
        result = run_single_core(small_stream_trace, build_scenario("baseline"))
        assert 0.0 <= result.l1d_prefetch_accuracy <= 1.0

    def test_served_by_accounts_for_all_loads(self, small_random_trace):
        result = run_single_core(small_random_trace, build_scenario("baseline"))
        served = sum(result.served_by.values())
        assert served > 0


class TestMultiCoreDriver:
    def test_four_core_mix_runs(self, small_random_trace, small_stream_trace):
        traces = [small_random_trace, small_stream_trace] * 2
        result = run_multicore_mix(traces, build_scenario("baseline"))
        assert len(result.ipcs) == 4
        assert all(ipc > 0 for ipc in result.ipcs)
        assert result.dram_transactions > 0

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError):
            run_multicore_mix([], build_scenario("baseline"))

    def test_shared_bandwidth_slows_cores_down(self, small_chase_trace):
        single = run_single_core(
            small_chase_trace,
            build_scenario("baseline"),
            config=cascade_lake_multi_core(4),
        )
        mix = run_multicore_mix(
            [small_chase_trace] * 4,
            build_scenario("baseline"),
            config=cascade_lake_multi_core(4),
        )
        assert max(mix.ipcs) <= single.ipc * 1.05

    def test_weighted_speedup_helper(self, small_random_trace):
        mix = run_multicore_mix([small_random_trace] * 2, build_scenario("baseline"))
        ws = mix.weighted_speedup([1.0, 1.0])
        assert ws == pytest.approx(sum(mix.ipcs))

    def test_scheme_comparison_runs(self, small_random_trace):
        traces = [small_random_trace] * 2
        baseline = run_multicore_mix(traces, build_scenario("baseline"))
        tlp = run_multicore_mix(traces, build_scenario("tlp"))
        assert tlp.dram_transactions > 0
        assert baseline.dram_transactions > 0
