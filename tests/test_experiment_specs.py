"""Declarative experiment-spec layer tests.

The registry parity suite is the contract of the PR-5 refactor: every
registered figure, executed through its declarative sweep spec and pure
reducer, must be **bit-identical** to the committed pre-refactor outputs in
``tests/fixtures/expected_figures_quick.json`` (generated from the original
hand-rolled harness loops at the quick configuration; see
``tests/fixtures/generate_expected_figures.py``).

The rest pins the batch machinery: one engine fan-out per figure, the
in-process memo deduplicating across specs, parallel (``jobs > 1``)
execution matching serial, the sweep-spec JSON round trip, and the
config-keyed global cache.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.experiments import (
    fig01_mpki,
    fig02_hermes_dram_sc,
    fig04_offchip_breakdown,
    fig05_06_prefetch_location,
    fig10_12_singlecore,
    fig13_14_multicore,
    fig15_ablation,
    fig16_bandwidth,
    fig17_storage_budget,
    table02_storage,
)
from repro.experiments.common import (
    CampaignCache,
    ExperimentConfig,
    get_global_cache,
    quick_experiment_config,
)
from repro.experiments.spec import (
    MultiCoreSweep,
    SingleCoreSweep,
    SweepResults,
    SweepSpec,
    get_experiment,
    multicore_mixes,
    registered_experiments,
    run_experiment,
    sweep_spec_from_dict,
    sweep_spec_to_dict,
)

FIXTURE_PATH = Path(__file__).parent / "fixtures" / "expected_figures_quick.json"

#: Figure 16's pinned bandwidth points (must match the fixture generator).
FIG16_BANDWIDTHS = (1.6, 6.4)


def json_ready(result) -> dict:
    """Result dataclass -> the canonical JSON payload the fixture stores."""
    return json.loads(json.dumps(dataclasses.asdict(result), sort_keys=True))


@pytest.fixture(scope="module")
def expected() -> dict:
    return json.loads(FIXTURE_PATH.read_text())


@pytest.fixture(scope="module")
def campaign():
    """One shared campaign cache so overlapping figure sweeps dedupe."""
    return CampaignCache(quick_experiment_config(), use_result_cache=False)


#: Figure name -> spec-driven run at the pinned parameters.
PARITY_RUNS = {
    "fig01": lambda cache: fig01_mpki.run(cache=cache),
    "fig02": lambda cache: fig02_hermes_dram_sc.run(cache=cache),
    "fig04": lambda cache: fig04_offchip_breakdown.run(cache=cache),
    "fig05": lambda cache: fig05_06_prefetch_location.run(cache=cache),
    "fig10": lambda cache: fig10_12_singlecore.run(cache=cache),
    "fig13": lambda cache: fig13_14_multicore.run(cache=cache),
    "fig15": lambda cache: fig15_ablation.run(cache=cache),
    "fig16": lambda cache: fig16_bandwidth.run(
        cache=cache, bandwidths=FIG16_BANDWIDTHS
    ),
    "fig17": lambda cache: fig17_storage_budget.run(cache=cache),
    "table02": lambda cache: table02_storage.run(),
}


class TestRegistryParity:
    """Spec-driven outputs == committed pre-refactor outputs, bitwise."""

    @pytest.mark.parametrize("name", sorted(PARITY_RUNS))
    def test_bit_identical_to_pre_refactor(self, name, campaign, expected):
        result = PARITY_RUNS[name](campaign)
        assert json_ready(result) == expected[name]

    def test_fixture_covers_every_registered_experiment(self, expected):
        assert set(registered_experiments()) == set(expected) == set(PARITY_RUNS)


class TestRegistry:
    def test_lookup_and_unknown_name(self):
        spec = get_experiment("fig01")
        assert spec.name == "fig01"
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("fig99")

    def test_specs_carry_render_and_sweep(self):
        for name, spec in registered_experiments().items():
            assert callable(spec.build_sweep)
            assert callable(spec.reduce)
            assert callable(spec.format_table)
            assert spec.title


class TestSweepCompilation:
    def test_axes_cross_product_and_config_defaults(self):
        config = quick_experiment_config()
        spec = SweepSpec(
            single_core=(SingleCoreSweep(schemes=("baseline", "tlp")),)
        )
        points = spec.compile(config)
        assert len(points) == (
            len(config.workloads()) * 2 * len(config.l1d_prefetchers)
        )
        assert {point.memory_accesses for point in points} == {
            config.memory_accesses
        }

    def test_compilation_deduplicates_by_key(self):
        config = quick_experiment_config()
        block = SingleCoreSweep(schemes=("baseline", "baseline", "tlp"))
        points = SweepSpec(single_core=(block, block)).compile(config)
        assert len(points) == len(config.workloads()) * 2

    def test_multicore_block_includes_isolated_baselines(self):
        config = quick_experiment_config()
        points = SweepSpec(
            multi_core=(MultiCoreSweep(schemes=("baseline", "tlp")),)
        ).compile(config)
        mixes = multicore_mixes(config, "gap") + multicore_mixes(config, "spec")
        singles = [p for p in points if p.kind == "single_core"]
        multis = [p for p in points if p.kind == "multi_core"]
        assert len(multis) == len(mixes) * 2
        # Isolated runs: every distinct mixed workload, baseline scheme, at
        # the multi-core budget.
        assert singles
        assert {p.scheme for p in singles} == {"baseline"}
        assert {p.memory_accesses for p in singles} == {
            config.multicore_memory_accesses
        }

    def test_explicit_mixes_override_suites(self):
        config = quick_experiment_config()
        mix = ("custom", ("bfs.urand", "bfs.urand", "pr.urand", "pr.urand"))
        points = SweepSpec(
            multi_core=(
                MultiCoreSweep(mixes=(mix,), isolated_baselines=False),
            )
        ).compile(config)
        assert [p.mix_name for p in points] == ["custom"]
        assert points[0].workloads == mix[1]

    def test_compiled_points_match_campaign_cache_keys(self):
        """Spec-compiled points share cache keys with the legacy call path."""
        config = quick_experiment_config()
        cache = CampaignCache(config, use_result_cache=False)
        point = SweepSpec(
            single_core=(
                SingleCoreSweep(
                    workloads=("bfs.urand",),
                    schemes=("tlp",),
                    l1d_prefetchers=("ipcp",),
                ),
            )
        ).compile(config)[0]
        legacy = cache._single_core_point(
            "bfs.urand", "tlp", "ipcp", config.memory_accesses
        )
        assert point.key() == legacy.key()


class TestBatchExecution:
    def test_figure_runs_as_one_engine_batch(self, monkeypatch):
        """A spec-driven figure issues exactly one ``CampaignEngine.run``."""
        cache = CampaignCache(quick_experiment_config(), use_result_cache=False)
        calls = []
        original = cache.engine.run

        def counting_run(points, jobs=None, policy=None, progress=None):
            points = list(points)
            calls.append(len(points))
            return original(points, jobs=jobs, policy=policy,
                            progress=progress)

        monkeypatch.setattr(cache.engine, "run", counting_run)
        fig01_mpki.run(cache=cache)
        assert len(calls) == 1
        assert calls[0] == len(cache.config.workloads())

    def test_memo_dedupes_across_specs(self):
        """A second figure over the same points simulates nothing new."""
        cache = CampaignCache(quick_experiment_config(), use_result_cache=False)
        fig01_mpki.run(cache=cache)
        simulated = cache.engine.simulations_run
        assert simulated > 0
        # Figure 1's baseline points are a subset of Figure 2's sweep.
        fig02_hermes_dram_sc.run(cache=cache)
        assert (
            cache.engine.simulations_run - simulated
            == len(cache.config.workloads())  # only the hermes points
        )

    def test_parallel_jobs_bit_identical_to_serial(self, expected):
        """The pool fan-out path produces the exact pre-refactor outputs."""
        cache = CampaignCache(quick_experiment_config(), use_result_cache=False)
        result = run_experiment(get_experiment("fig01"), cache=cache, jobs=2)
        assert json_ready(result) == expected["fig01"]

    def test_custom_budget_batch_does_not_poison_multi_core_memo(self):
        """A batch at a non-config budget must not satisfy config-budget calls."""
        config = quick_experiment_config()
        cache = CampaignCache(config, use_result_cache=False)
        mix_name, workloads = cache.multicore_mixes("gap")[0]
        custom_budget = config.multicore_memory_accesses // 2
        points = SweepSpec(
            multi_core=(
                MultiCoreSweep(
                    mixes=((mix_name, tuple(workloads)),),
                    schemes=("baseline",),
                    l1d_prefetchers=("ipcp",),
                    memory_accesses=custom_budget,
                    isolated_baselines=False,
                ),
            )
        ).compile(config)
        batch = cache.run_points(points)
        assert len(batch) == 1
        # The legacy call simulates at the config budget: a fresh run, not
        # the memoized half-budget result.
        result = cache.multi_core(mix_name, workloads, "baseline", "ipcp")
        (custom_result,) = batch.values()
        assert sum(result.instructions) > sum(custom_result.instructions)

    def test_run_points_returns_every_requested_key(self):
        config = quick_experiment_config()
        cache = CampaignCache(config, use_result_cache=False)
        points = SweepSpec(
            single_core=(
                SingleCoreSweep(schemes=("baseline",), l1d_prefetchers=("ipcp",)),
            )
        ).compile(config)
        results = cache.run_points(points)
        assert set(results) == {point.key() for point in points}
        # The semantic memo was populated: per-point calls are free now.
        simulated = cache.engine.simulations_run
        cache.single_core(config.workloads()[0], "baseline", "ipcp")
        assert cache.engine.simulations_run == simulated


class TestSweepResults:
    def test_lookup_outside_sweep_raises(self):
        config = quick_experiment_config()
        results = SweepResults(config, {})
        with pytest.raises(KeyError, match="not part of the executed sweep"):
            results.single_core("bfs.urand", "baseline", "ipcp")

    def test_lookup_finds_executed_point(self):
        config = quick_experiment_config()
        cache = CampaignCache(config, use_result_cache=False)
        points = SweepSpec(
            single_core=(
                SingleCoreSweep(
                    workloads=("bfs.urand",),
                    schemes=("baseline",),
                    l1d_prefetchers=("ipcp",),
                ),
            )
        ).compile(config)
        view = SweepResults(config, cache.run_points(points))
        result = view.single_core("bfs.urand", "baseline", "ipcp")
        assert result.ipc > 0


class TestSweepSpecJson:
    def test_round_trip(self):
        spec = SweepSpec(
            single_core=(
                SingleCoreSweep(
                    workloads=("bfs.urand", "imported.astar"),
                    schemes=("baseline", "tlp"),
                    memory_accesses=4_000,
                ),
            ),
            multi_core=(
                MultiCoreSweep(
                    suites=("gap",),
                    schemes=("baseline", "hermes"),
                    per_core_bandwidths=(1.6, 3.2),
                    mixes=(("custom", ("a", "b", "c", "d")),),
                ),
            ),
        )
        assert sweep_spec_from_dict(sweep_spec_to_dict(spec)) == spec

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown SingleCoreSweep axes"):
            sweep_spec_from_dict({"single_core": [{"scheme": ["tlp"]}]})
        with pytest.raises(ValueError, match="unknown sweep spec sections"):
            sweep_spec_from_dict({"sweeps": []})

    def test_scalar_for_list_axis_rejected(self):
        # A bare string would otherwise sweep one workload per character.
        with pytest.raises(ValueError, match="'workloads' must be a JSON array"):
            sweep_spec_from_dict({"single_core": [{"workloads": "bfs.urand"}]})
        with pytest.raises(ValueError, match="'schemes' must be a JSON array"):
            sweep_spec_from_dict({"multi_core": [{"schemes": "tlp"}]})
        # JSON null is rejected too: omit the key to inherit the default.
        with pytest.raises(ValueError, match="'schemes' must be a JSON array"):
            sweep_spec_from_dict({"single_core": [{"schemes": None}]})
        # Per-point scalars stay scalars.
        spec = sweep_spec_from_dict(
            {"single_core": [{"memory_accesses": 4000}],
             "multi_core": [{"isolated_baselines": False}]}
        )
        assert spec.single_core[0].memory_accesses == 4000
        assert spec.multi_core[0].isolated_baselines is False

    def test_list_axis_elements_are_typed(self):
        with pytest.raises(ValueError, match="entries must be strings"):
            sweep_spec_from_dict({"single_core": [{"workloads": ["bfs.urand", 7]}]})
        with pytest.raises(ValueError, match="entries must be numbers"):
            sweep_spec_from_dict(
                {"multi_core": [{"per_core_bandwidths": ["3.2"]}]}
            )
        with pytest.raises(ValueError, match="must be .*pairs"):
            sweep_spec_from_dict({"multi_core": [{"mixes": [["m", "not-a-list"]]}]})
        # Well-formed mixes still parse.
        spec = sweep_spec_from_dict(
            {"multi_core": [{"mixes": [["m", ["a", "b", "c", "d"]]]}]}
        )
        assert spec.multi_core[0].mixes == (("m", ("a", "b", "c", "d")),)

    def test_scalar_axes_are_typed(self):
        with pytest.raises(ValueError, match="must be an integer"):
            sweep_spec_from_dict({"single_core": [{"memory_accesses": "4000"}]})
        with pytest.raises(ValueError, match="must be an integer"):
            sweep_spec_from_dict({"multi_core": [{"memory_accesses": [500]}]})
        with pytest.raises(ValueError, match="must be a boolean"):
            sweep_spec_from_dict({"multi_core": [{"isolated_baselines": 1}]})

    def test_defaults_omitted_from_serialization(self):
        payload = sweep_spec_to_dict(
            SweepSpec(single_core=(SingleCoreSweep(schemes=("tlp",)),))
        )
        assert payload == {
            "single_core": [{"schemes": ["tlp"]}],
            "multi_core": [],
        }


class TestGlobalCacheKeying:
    def test_distinct_configs_get_distinct_caches(self):
        default = get_global_cache()
        quick = get_global_cache(quick_experiment_config())
        assert default is not quick
        assert quick.config == quick_experiment_config()

    def test_equal_configs_share_one_cache(self):
        assert get_global_cache(quick_experiment_config()) is get_global_cache(
            quick_experiment_config()
        )
        assert get_global_cache() is get_global_cache(ExperimentConfig())
