"""Batch core equivalence: the chunked fused loop vs. the scalar reference.

The batch core of :mod:`repro.sim.batch` is an optimization, not a model
change: for every supported component combination it must produce results
**bit-identical** to the record-at-a-time scalar path, and it must silently
fall back to that path for combinations it does not model.  These tests pin
both properties across every scheme, every L1D prefetcher, every trace
family (GAP generator, SPEC-like generator, imported ChampSim fixture), the
vectorized hashing/perceptron primitives the batch core is built from, and
the plumbing that routes ``core="batch"`` through configs and the API
facade without perturbing cache keys.
"""

from __future__ import annotations

import dataclasses
import json
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.common.config import (
    SystemConfig,
    cascade_lake_multi_core,
    cascade_lake_single_core,
    system_config_from_dict,
    system_config_to_dict,
)
from repro.common.hashing import (
    fold_xor,
    fold_xor_np,
    hash_combine,
    hash_combine_np,
    jenkins32,
    jenkins32_np,
    table_index,
    table_index_np,
)
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.replacement import SRRIPPolicy
from repro.obs import tracer
from repro.predictors.features import FeatureSpec
from repro.predictors.perceptron import HashedPerceptron
from repro.prefetchers.ipcp import IPCPPrefetcher
from repro.prefetchers.ppf import PerceptronPrefetchFilter
from repro.prefetchers.spp import SPPPrefetcher
from repro.sim.batch import (
    batch_supported,
    batch_unsupported_reason,
    run_single_core_batched,
)
from repro.sim.engine import single_core_point
from repro.sim.multi_core import run_multicore_mix
from repro.sim.scenarios import SCHEMES, build_hierarchy, build_scenario
from repro.sim.single_core import run_single_core
from repro.traces.ingest import import_champsim_trace, read_champsim_trace
from repro.traces.store import TraceStore
from repro.workloads import gap_trace, spec_like_trace
from repro.workloads.catalog import default_catalog

FIXTURES = Path(__file__).parent / "fixtures"
CHAMPSIM_FIXTURE = FIXTURES / "champsim_small.trace"

L1D_PREFETCHERS = ("ipcp", "berti", "next_line", "stride", "none")

ACCESSES = 1_500


def _system(core: str) -> SystemConfig:
    return dataclasses.replace(cascade_lake_single_core(), sim_core=core)


def _run_pair(trace, scheme: str, l1d_prefetcher: str = "ipcp"):
    scenario = build_scenario(scheme, l1d_prefetcher=l1d_prefetcher)
    scalar = run_single_core(trace, scenario, config=_system("scalar"))
    batch = run_single_core(trace, scenario, config=_system("batch"))
    return scalar, batch


def _assert_identical(scalar, batch) -> None:
    assert dataclasses.asdict(batch) == dataclasses.asdict(scalar)


@pytest.fixture(scope="module")
def gap_bfs_trace():
    return gap_trace("bfs", graph="urand", scale="medium",
                     max_memory_accesses=ACCESSES)


@pytest.fixture(scope="module")
def spec_mcf_trace():
    return spec_like_trace("mcf_like", num_memory_accesses=ACCESSES)


class TestSchemePrefetcherEquivalence:
    """Every scheme x every L1D prefetcher: batch == scalar, bit for bit.

    Schemes whose components the batch core does not model (e.g.
    ``delayed_tsp``'s always-delay predictor subclass) exercise the silent
    scalar fallback here -- the equality then pins that the fallback is
    complete, not partial.
    """

    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    @pytest.mark.parametrize("l1d_prefetcher", L1D_PREFETCHERS)
    def test_bit_identical(self, gap_bfs_trace, scheme, l1d_prefetcher):
        scalar, batch = _run_pair(gap_bfs_trace, scheme, l1d_prefetcher)
        _assert_identical(scalar, batch)


class TestTraceFamilyEquivalence:
    """Batch == scalar on every trace family the repo can produce."""

    @pytest.mark.parametrize("scheme", ("baseline", "hermes", "tlp"))
    def test_spec_like_generator(self, spec_mcf_trace, scheme):
        scalar, batch = _run_pair(spec_mcf_trace, scheme)
        _assert_identical(scalar, batch)

    def test_gap_generator_all_kernels_tlp(self):
        for kernel in ("bfs", "pr", "sssp"):
            trace = gap_trace(kernel, graph="kron", scale="medium",
                              max_memory_accesses=1_000)
            scalar, batch = _run_pair(trace, "tlp")
            _assert_identical(scalar, batch)

    def test_champsim_fixture(self):
        trace = read_champsim_trace(CHAMPSIM_FIXTURE, name="fixture")
        scalar, batch = _run_pair(trace, "tlp")
        _assert_identical(scalar, batch)

    @pytest.mark.parametrize(
        "scheme,l1d_prefetcher",
        (("tlp", "berti"), ("ppf", "ipcp"), ("ppf", "berti")),
    )
    def test_champsim_fixture_batch_kernels(self, scheme, l1d_prefetcher):
        """The imported-trace path through every newly fused kernel:

        Berti's batch delta kernel and the aggressive-SPP + PPF L2 path
        (the ``tlp``/IPCP combination is pinned by ``test_champsim_fixture``).
        """
        trace = read_champsim_trace(CHAMPSIM_FIXTURE, name="fixture")
        scalar, batch = _run_pair(trace, scheme, l1d_prefetcher)
        _assert_identical(scalar, batch)

    def test_tiny_chunks_hit_every_boundary(self, spec_mcf_trace):
        """A 7-record chunk forces lead-window/boundary code on every chunk."""
        scenario = build_scenario("tlp")
        system = _system("scalar")
        scalar_hierarchy = build_hierarchy(scenario, config=system)
        scalar = run_single_core(spec_mcf_trace, scenario, config=system,
                                 hierarchy=scalar_hierarchy)
        batch_hierarchy = build_hierarchy(scenario, config=system)
        runner = run_single_core_batched(
            spec_mcf_trace, batch_hierarchy, system.core, 0.2, chunk_records=7
        )
        result = runner.finish()
        batch_hierarchy.finalize()
        assert result.instructions > 0
        assert batch_hierarchy.stats.demand_loads == (
            scalar_hierarchy.stats.demand_loads
        )
        assert batch_hierarchy.dram.stats.total_transactions == (
            scalar_hierarchy.dram.stats.total_transactions
        )
        assert result.ipc == pytest.approx(scalar.ipc)


class TestChunkBoundarySweep:
    """Chunk size must never change results: every boundary is mid-stream.

    Sweeps chunk sizes from the degenerate 1-record chunk (every record
    crosses a boundary) through primes that misalign with internal windows
    up to one chunk covering the whole trace, against the same scalar
    reference.  Runs under ``ppf`` so the boundary also cuts through the
    fused SPP lookahead + PPF filter state.
    """

    @pytest.fixture(scope="class")
    def scalar_reference(self):
        trace = spec_like_trace("mcf_like", num_memory_accesses=600)
        scenario = build_scenario("ppf", l1d_prefetcher="ipcp")
        system = _system("scalar")
        hierarchy = build_hierarchy(scenario, config=system)
        result = run_single_core(trace, scenario, config=system,
                                 hierarchy=hierarchy)
        return trace, scenario, result, hierarchy

    @pytest.mark.parametrize("chunk_records", (1, 7, 61, 600, 10_000))
    def test_chunk_size_invariance(self, scalar_reference, chunk_records):
        trace, scenario, scalar, scalar_hierarchy = scalar_reference
        system = _system("scalar")
        hierarchy = build_hierarchy(scenario, config=system)
        runner = run_single_core_batched(
            trace, hierarchy, system.core, 0.2, chunk_records=chunk_records
        )
        result = runner.finish()
        hierarchy.finalize()
        assert dataclasses.asdict(hierarchy.stats) == (
            dataclasses.asdict(scalar_hierarchy.stats)
        )
        assert dataclasses.asdict(hierarchy.dram.stats) == (
            dataclasses.asdict(scalar_hierarchy.dram.stats)
        )
        assert result.ipc == pytest.approx(scalar.ipc)


class TestTableCollisionStress:
    """Tiny predictor tables force index collisions on every structure.

    With 4-entry SPP signature tables, 8-entry pattern tables and a
    16-entry PPF weight table, distinct streams constantly alias into the
    same entries; the fused kernels must replay exactly the same collision
    and saturation behaviour as the object reference.
    """

    def _hierarchy(self):
        return MemoryHierarchy(
            cascade_lake_single_core(),
            l1d_prefetcher=IPCPPrefetcher(ip_table_entries=8,
                                          cplx_table_entries=16,
                                          region_entries=4),
            l2_prefetcher=SPPPrefetcher(signature_table_entries=4,
                                        pattern_table_entries=8,
                                        aggressive=True),
            l2_prefetch_filter=PerceptronPrefetchFilter(table_entries=16),
        )

    def test_collisions_bit_identical(self, spec_mcf_trace):
        scenario = build_scenario("ppf", l1d_prefetcher="ipcp")
        results = {}
        for core in ("scalar", "batch"):
            hierarchy = self._hierarchy()
            assert batch_supported(hierarchy)
            results[core] = run_single_core(
                spec_mcf_trace, scenario, config=_system(core),
                hierarchy=hierarchy,
            )
        _assert_identical(results["scalar"], results["batch"])


class TestFallbacks:
    def test_supported_schemes(self):
        for scheme in ("baseline", "hermes", "tlp", "flp", "ppf"):
            hierarchy = build_hierarchy(build_scenario(scheme))
            assert batch_supported(hierarchy), scheme

    def test_predictor_subclass_falls_back(self):
        hierarchy = build_hierarchy(build_scenario("delayed_tsp"))
        assert not batch_supported(hierarchy)

    def test_hierarchy_subclass_falls_back(self):
        class InstrumentedHierarchy(MemoryHierarchy):
            pass

        hierarchy = InstrumentedHierarchy(cascade_lake_single_core())
        assert not batch_supported(hierarchy)

    def test_fallback_reason_names_component(self):
        for scheme in ("baseline", "hermes", "tlp", "ppf"):
            hierarchy = build_hierarchy(build_scenario(scheme))
            assert batch_unsupported_reason(hierarchy) is None, scheme

        reason = batch_unsupported_reason(
            build_hierarchy(build_scenario("delayed_tsp"))
        )
        assert reason is not None
        assert "unmodelled off-chip predictor" in reason

        class InstrumentedHierarchy(MemoryHierarchy):
            pass

        reason = batch_unsupported_reason(
            InstrumentedHierarchy(cascade_lake_single_core())
        )
        assert reason == "hierarchy subclass InstrumentedHierarchy"

    def test_fallback_reason_names_non_lru_cache(self):
        hierarchy = build_hierarchy(build_scenario("tlp"))
        llc = hierarchy.llc
        llc._policies[0] = SRRIPPolicy(llc.associativity)
        reason = batch_unsupported_reason(hierarchy)
        assert reason is not None
        assert llc.name in reason
        assert "non-LRU replacement policy" in reason

    def test_fallback_emits_obs_event_and_warns_once(
        self, tmp_path, spec_mcf_trace, caplog
    ):
        """A ``--core batch`` fallback is never silent: it emits one
        ``sim.batch.fallback`` obs event per run naming the offending
        component, and logs a warning once per reason per process."""
        tracer.configure(tmp_path, proc="t-fallback")
        try:
            scenario = build_scenario("delayed_tsp")
            with caplog.at_level("WARNING", logger="repro.sim.batch"):
                for _ in range(2):
                    run_single_core(
                        spec_mcf_trace, scenario, config=_system("batch")
                    )
            tracer.shutdown()
        finally:
            tracer.disable()
        events = [
            record for record in tracer.load_run(tmp_path)
            if record.get("name") == "sim.batch.fallback"
        ]
        # One event per fallback occurrence (the warmup and measured phases
        # fall back separately), so two runs emit at least two events.
        assert len(events) >= 2
        for event in events:
            assert "unmodelled off-chip predictor" in event["attrs"]["reason"]
        warning_lines = [
            message for message in caplog.messages
            if "fell back to the scalar reference path" in message
        ]
        assert len(warning_lines) <= 1

    def test_warning_fires_once_per_reason(self, caplog):
        from repro.sim.batch import _note_scalar_fallback

        reason = "test-only synthetic reason (once-per-reason check)"
        with caplog.at_level("WARNING", logger="repro.sim.batch"):
            _note_scalar_fallback(reason)
            _note_scalar_fallback(reason)
        warnings_seen = [m for m in caplog.messages if reason in m]
        assert len(warnings_seen) == 1

    def test_multicore_runs_scalar_regardless_of_core(self, spec_mcf_trace):
        traces = [spec_mcf_trace, spec_mcf_trace]
        scenario = build_scenario("tlp")
        results = {}
        for core in ("scalar", "batch"):
            config = dataclasses.replace(
                cascade_lake_multi_core(num_cores=2), sim_core=core
            )
            results[core] = run_multicore_mix(
                traces, scenario, config=config, mix_name="mix"
            )
        assert dataclasses.asdict(results["batch"]) == (
            dataclasses.asdict(results["scalar"])
        )


class TestVectorizedHashing:
    """The numpy hash kernels reproduce the scalar functions bit for bit."""

    def _values(self):
        rng = np.random.default_rng(7)
        values = rng.integers(0, 1 << 48, size=256, dtype=np.uint64)
        values[:4] = (0, 1, (1 << 32) - 1, (1 << 48) - 1)
        return values

    def test_jenkins32(self):
        values = self._values()
        expected = [jenkins32(int(v)) for v in values]
        assert jenkins32_np(values).tolist() == expected

    @pytest.mark.parametrize("bits", (6, 10, 12))
    def test_fold_xor(self, bits):
        values = self._values()
        expected = [fold_xor(int(v), bits) for v in values]
        assert fold_xor_np(values, bits).tolist() == expected

    def test_hash_combine(self):
        a, b = self._values(), self._values()[::-1].copy()
        expected = [hash_combine(int(x), int(y)) for x, y in zip(a, b)]
        assert hash_combine_np(a, b).tolist() == expected

    @pytest.mark.parametrize("bits", (7, 12))
    def test_table_index(self, bits):
        values = self._values()
        expected = [table_index(int(v), bits) for v in values]
        assert table_index_np(values, bits).tolist() == expected


class TestPerceptronBatchOps:
    def _perceptron(self) -> HashedPerceptron:
        return HashedPerceptron(
            [
                FeatureSpec("a", lambda c: c.pc, table_entries=64),
                FeatureSpec("b", lambda c: c.vaddr, table_entries=100),
            ],
            training_threshold=8,
        )

    def test_predict_batch_matches_confidence(self):
        perceptron = self._perceptron()
        rng = np.random.default_rng(3)
        for view in perceptron.weight_views():
            view[:] = rng.integers(-15, 16, size=view.shape, dtype=np.int32)
        columns = [
            rng.integers(0, 64, size=32, dtype=np.int64),
            rng.integers(0, 100, size=32, dtype=np.int64),
        ]
        got = perceptron.predict_batch(columns)
        expected = [
            perceptron.confidence([int(i), int(j)])
            for i, j in zip(columns[0], columns[1])
        ]
        assert got.tolist() == expected

    def test_train_batch_matches_sequential(self):
        rng = np.random.default_rng(5)
        columns = [
            # Deliberately collision-heavy: saturating updates on shared
            # indices are order sensitive, which is exactly what
            # train_batch must preserve.
            rng.integers(0, 4, size=64, dtype=np.int64),
            rng.integers(0, 4, size=64, dtype=np.int64),
        ]
        targets = rng.integers(0, 2, size=64).astype(bool)
        confidences = rng.integers(-40, 41, size=64, dtype=np.int64)

        batched = self._perceptron()
        batched.train_batch(columns, targets, confidences)
        sequential = self._perceptron()
        for i, j, target, confidence in zip(
            columns[0], columns[1], targets, confidences
        ):
            sequential.train([int(i), int(j)], bool(target), int(confidence))

        for got, expected in zip(
            batched.weight_views(), sequential.weight_views()
        ):
            assert got.tolist() == expected.tolist()
        assert batched.stats.weight_updates == sequential.stats.weight_updates


class TestSimCoreConfig:
    def test_rejects_unknown_core(self):
        with pytest.raises(ValueError):
            dataclasses.replace(cascade_lake_single_core(), sim_core="simd")

    def test_round_trip_defaults_to_scalar(self):
        payload = system_config_to_dict(cascade_lake_single_core())
        assert "sim_core" not in payload
        assert system_config_from_dict(payload).sim_core == "scalar"

    def test_cache_keys_shared_between_cores(self):
        """core="batch" is bit-identical, so it must not fork the cache."""
        points = {
            core: single_core_point(
                "bfs.urand", "tlp", "ipcp", 1_000, 0.2, system=_system(core)
            )
            for core in ("scalar", "batch")
        }
        assert points["scalar"].key() == points["batch"].key()
        assert json.loads(points["scalar"].system_json) == (
            json.loads(points["batch"].system_json)
        )


class TestTraceStoreKeywordRename:
    def test_catalog_build_store_alias_warns(self, tmp_path):
        store = TraceStore(tmp_path / "traces")
        catalog = default_catalog()
        with pytest.warns(DeprecationWarning, match="trace_store"):
            via_alias = catalog.build("spec.mcf_like", 400, store=store)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            canonical = catalog.build("spec.mcf_like", 400, trace_store=store)
        assert via_alias.as_lists() == canonical.as_lists()

    def test_catalog_build_rejects_both_keywords(self, tmp_path):
        store = TraceStore(tmp_path / "traces")
        with pytest.raises(TypeError):
            default_catalog().build(
                "spec.mcf_like", 400, trace_store=store, store=store
            )

    def test_import_champsim_store_alias_warns(self, tmp_path):
        store = TraceStore(tmp_path / "traces")
        with pytest.warns(DeprecationWarning, match="trace_store"):
            workload, _, _ = import_champsim_trace(
                CHAMPSIM_FIXTURE, store=store, name="alias"
            )
        assert workload == "imported.alias"
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            workload, _, _ = import_champsim_trace(
                CHAMPSIM_FIXTURE, trace_store=store, name="canonical"
            )
        assert workload == "imported.canonical"


class TestApiFacade:
    def test_all_names_resolve(self):
        from repro import api

        missing = [name for name in api.__all__ if not hasattr(api, name)]
        assert not missing

    def test_simulate_point_cores_identical(self):
        from repro import api

        results = {
            core: api.simulate_point(
                "spec.mcf_like", "tlp", memory_accesses=1_000, core=core
            )
            for core in ("scalar", "batch")
        }
        assert dataclasses.asdict(results["batch"]) == (
            dataclasses.asdict(results["scalar"])
        )

    def test_run_sweep_smoke(self):
        from repro import api

        spec = api.SweepSpec(
            single_core=(
                api.SingleCoreSweep(
                    workloads=("spec.mcf_like",),
                    schemes=("baseline", "tlp"),
                    l1d_prefetchers=("ipcp",),
                ),
            )
        )
        config = api.ExperimentConfig(memory_accesses=1_000)
        results = api.run_sweep(
            spec, config=config, core="batch", use_result_cache=False, jobs=1
        )
        tlp = results.single_core("spec.mcf_like", "tlp", l1d_prefetcher="ipcp")
        baseline = results.single_core(
            "spec.mcf_like", "baseline", l1d_prefetcher="ipcp"
        )
        assert tlp.ipc > 0 and baseline.ipc > 0

    def test_load_trace(self):
        from repro import api

        trace = api.load_trace("spec.omnetpp_like", memory_accesses=500)
        assert trace.num_memory_accesses == 500
