"""Batch core equivalence: the chunked fused loop vs. the scalar reference.

The batch core of :mod:`repro.sim.batch` is an optimization, not a model
change: for every supported component combination it must produce results
**bit-identical** to the record-at-a-time scalar path, and it must silently
fall back to that path for combinations it does not model.  These tests pin
both properties across every scheme, every L1D prefetcher, every trace
family (GAP generator, SPEC-like generator, imported ChampSim fixture), the
vectorized hashing/perceptron primitives the batch core is built from, and
the plumbing that routes ``core="batch"`` through configs and the API
facade without perturbing cache keys.
"""

from __future__ import annotations

import dataclasses
import json
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.common.config import (
    SystemConfig,
    cascade_lake_multi_core,
    cascade_lake_single_core,
    system_config_from_dict,
    system_config_to_dict,
)
from repro.common.hashing import (
    fold_xor,
    fold_xor_np,
    hash_combine,
    hash_combine_np,
    jenkins32,
    jenkins32_np,
    table_index,
    table_index_np,
)
from repro.memory.hierarchy import MemoryHierarchy
from repro.predictors.features import FeatureSpec
from repro.predictors.perceptron import HashedPerceptron
from repro.sim.batch import (
    batch_supported,
    run_single_core_batched,
)
from repro.sim.engine import single_core_point
from repro.sim.multi_core import run_multicore_mix
from repro.sim.scenarios import SCHEMES, build_hierarchy, build_scenario
from repro.sim.single_core import run_single_core
from repro.traces.ingest import import_champsim_trace, read_champsim_trace
from repro.traces.store import TraceStore
from repro.workloads import gap_trace, spec_like_trace
from repro.workloads.catalog import default_catalog

FIXTURES = Path(__file__).parent / "fixtures"
CHAMPSIM_FIXTURE = FIXTURES / "champsim_small.trace"

L1D_PREFETCHERS = ("ipcp", "berti", "next_line", "stride", "none")

ACCESSES = 1_500


def _system(core: str) -> SystemConfig:
    return dataclasses.replace(cascade_lake_single_core(), sim_core=core)


def _run_pair(trace, scheme: str, l1d_prefetcher: str = "ipcp"):
    scenario = build_scenario(scheme, l1d_prefetcher=l1d_prefetcher)
    scalar = run_single_core(trace, scenario, config=_system("scalar"))
    batch = run_single_core(trace, scenario, config=_system("batch"))
    return scalar, batch


def _assert_identical(scalar, batch) -> None:
    assert dataclasses.asdict(batch) == dataclasses.asdict(scalar)


@pytest.fixture(scope="module")
def gap_bfs_trace():
    return gap_trace("bfs", graph="urand", scale="medium",
                     max_memory_accesses=ACCESSES)


@pytest.fixture(scope="module")
def spec_mcf_trace():
    return spec_like_trace("mcf_like", num_memory_accesses=ACCESSES)


class TestSchemePrefetcherEquivalence:
    """Every scheme x every L1D prefetcher: batch == scalar, bit for bit.

    Schemes whose components the batch core does not model (e.g.
    ``delayed_tsp``'s always-delay predictor subclass) exercise the silent
    scalar fallback here -- the equality then pins that the fallback is
    complete, not partial.
    """

    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    @pytest.mark.parametrize("l1d_prefetcher", L1D_PREFETCHERS)
    def test_bit_identical(self, gap_bfs_trace, scheme, l1d_prefetcher):
        scalar, batch = _run_pair(gap_bfs_trace, scheme, l1d_prefetcher)
        _assert_identical(scalar, batch)


class TestTraceFamilyEquivalence:
    """Batch == scalar on every trace family the repo can produce."""

    @pytest.mark.parametrize("scheme", ("baseline", "hermes", "tlp"))
    def test_spec_like_generator(self, spec_mcf_trace, scheme):
        scalar, batch = _run_pair(spec_mcf_trace, scheme)
        _assert_identical(scalar, batch)

    def test_gap_generator_all_kernels_tlp(self):
        for kernel in ("bfs", "pr", "sssp"):
            trace = gap_trace(kernel, graph="kron", scale="medium",
                              max_memory_accesses=1_000)
            scalar, batch = _run_pair(trace, "tlp")
            _assert_identical(scalar, batch)

    def test_champsim_fixture(self):
        trace = read_champsim_trace(CHAMPSIM_FIXTURE, name="fixture")
        scalar, batch = _run_pair(trace, "tlp")
        _assert_identical(scalar, batch)

    def test_tiny_chunks_hit_every_boundary(self, spec_mcf_trace):
        """A 7-record chunk forces lead-window/boundary code on every chunk."""
        scenario = build_scenario("tlp")
        system = _system("scalar")
        scalar_hierarchy = build_hierarchy(scenario, config=system)
        scalar = run_single_core(spec_mcf_trace, scenario, config=system,
                                 hierarchy=scalar_hierarchy)
        batch_hierarchy = build_hierarchy(scenario, config=system)
        runner = run_single_core_batched(
            spec_mcf_trace, batch_hierarchy, system.core, 0.2, chunk_records=7
        )
        result = runner.finish()
        batch_hierarchy.finalize()
        assert result.instructions > 0
        assert batch_hierarchy.stats.demand_loads == (
            scalar_hierarchy.stats.demand_loads
        )
        assert batch_hierarchy.dram.stats.total_transactions == (
            scalar_hierarchy.dram.stats.total_transactions
        )
        assert result.ipc == pytest.approx(scalar.ipc)


class TestFallbacks:
    def test_supported_schemes(self):
        for scheme in ("baseline", "hermes", "tlp", "flp", "ppf"):
            hierarchy = build_hierarchy(build_scenario(scheme))
            assert batch_supported(hierarchy), scheme

    def test_predictor_subclass_falls_back(self):
        hierarchy = build_hierarchy(build_scenario("delayed_tsp"))
        assert not batch_supported(hierarchy)

    def test_hierarchy_subclass_falls_back(self):
        class InstrumentedHierarchy(MemoryHierarchy):
            pass

        hierarchy = InstrumentedHierarchy(cascade_lake_single_core())
        assert not batch_supported(hierarchy)

    def test_multicore_runs_scalar_regardless_of_core(self, spec_mcf_trace):
        traces = [spec_mcf_trace, spec_mcf_trace]
        scenario = build_scenario("tlp")
        results = {}
        for core in ("scalar", "batch"):
            config = dataclasses.replace(
                cascade_lake_multi_core(num_cores=2), sim_core=core
            )
            results[core] = run_multicore_mix(
                traces, scenario, config=config, mix_name="mix"
            )
        assert dataclasses.asdict(results["batch"]) == (
            dataclasses.asdict(results["scalar"])
        )


class TestVectorizedHashing:
    """The numpy hash kernels reproduce the scalar functions bit for bit."""

    def _values(self):
        rng = np.random.default_rng(7)
        values = rng.integers(0, 1 << 48, size=256, dtype=np.uint64)
        values[:4] = (0, 1, (1 << 32) - 1, (1 << 48) - 1)
        return values

    def test_jenkins32(self):
        values = self._values()
        expected = [jenkins32(int(v)) for v in values]
        assert jenkins32_np(values).tolist() == expected

    @pytest.mark.parametrize("bits", (6, 10, 12))
    def test_fold_xor(self, bits):
        values = self._values()
        expected = [fold_xor(int(v), bits) for v in values]
        assert fold_xor_np(values, bits).tolist() == expected

    def test_hash_combine(self):
        a, b = self._values(), self._values()[::-1].copy()
        expected = [hash_combine(int(x), int(y)) for x, y in zip(a, b)]
        assert hash_combine_np(a, b).tolist() == expected

    @pytest.mark.parametrize("bits", (7, 12))
    def test_table_index(self, bits):
        values = self._values()
        expected = [table_index(int(v), bits) for v in values]
        assert table_index_np(values, bits).tolist() == expected


class TestPerceptronBatchOps:
    def _perceptron(self) -> HashedPerceptron:
        return HashedPerceptron(
            [
                FeatureSpec("a", lambda c: c.pc, table_entries=64),
                FeatureSpec("b", lambda c: c.vaddr, table_entries=100),
            ],
            training_threshold=8,
        )

    def test_predict_batch_matches_confidence(self):
        perceptron = self._perceptron()
        rng = np.random.default_rng(3)
        for view in perceptron.weight_views():
            view[:] = rng.integers(-15, 16, size=view.shape, dtype=np.int32)
        columns = [
            rng.integers(0, 64, size=32, dtype=np.int64),
            rng.integers(0, 100, size=32, dtype=np.int64),
        ]
        got = perceptron.predict_batch(columns)
        expected = [
            perceptron.confidence([int(i), int(j)])
            for i, j in zip(columns[0], columns[1])
        ]
        assert got.tolist() == expected

    def test_train_batch_matches_sequential(self):
        rng = np.random.default_rng(5)
        columns = [
            # Deliberately collision-heavy: saturating updates on shared
            # indices are order sensitive, which is exactly what
            # train_batch must preserve.
            rng.integers(0, 4, size=64, dtype=np.int64),
            rng.integers(0, 4, size=64, dtype=np.int64),
        ]
        targets = rng.integers(0, 2, size=64).astype(bool)
        confidences = rng.integers(-40, 41, size=64, dtype=np.int64)

        batched = self._perceptron()
        batched.train_batch(columns, targets, confidences)
        sequential = self._perceptron()
        for i, j, target, confidence in zip(
            columns[0], columns[1], targets, confidences
        ):
            sequential.train([int(i), int(j)], bool(target), int(confidence))

        for got, expected in zip(
            batched.weight_views(), sequential.weight_views()
        ):
            assert got.tolist() == expected.tolist()
        assert batched.stats.weight_updates == sequential.stats.weight_updates


class TestSimCoreConfig:
    def test_rejects_unknown_core(self):
        with pytest.raises(ValueError):
            dataclasses.replace(cascade_lake_single_core(), sim_core="simd")

    def test_round_trip_defaults_to_scalar(self):
        payload = system_config_to_dict(cascade_lake_single_core())
        assert "sim_core" not in payload
        assert system_config_from_dict(payload).sim_core == "scalar"

    def test_cache_keys_shared_between_cores(self):
        """core="batch" is bit-identical, so it must not fork the cache."""
        points = {
            core: single_core_point(
                "bfs.urand", "tlp", "ipcp", 1_000, 0.2, system=_system(core)
            )
            for core in ("scalar", "batch")
        }
        assert points["scalar"].key() == points["batch"].key()
        assert json.loads(points["scalar"].system_json) == (
            json.loads(points["batch"].system_json)
        )


class TestTraceStoreKeywordRename:
    def test_catalog_build_store_alias_warns(self, tmp_path):
        store = TraceStore(tmp_path / "traces")
        catalog = default_catalog()
        with pytest.warns(DeprecationWarning, match="trace_store"):
            via_alias = catalog.build("spec.mcf_like", 400, store=store)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            canonical = catalog.build("spec.mcf_like", 400, trace_store=store)
        assert via_alias.as_lists() == canonical.as_lists()

    def test_catalog_build_rejects_both_keywords(self, tmp_path):
        store = TraceStore(tmp_path / "traces")
        with pytest.raises(TypeError):
            default_catalog().build(
                "spec.mcf_like", 400, trace_store=store, store=store
            )

    def test_import_champsim_store_alias_warns(self, tmp_path):
        store = TraceStore(tmp_path / "traces")
        with pytest.warns(DeprecationWarning, match="trace_store"):
            workload, _, _ = import_champsim_trace(
                CHAMPSIM_FIXTURE, store=store, name="alias"
            )
        assert workload == "imported.alias"
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            workload, _, _ = import_champsim_trace(
                CHAMPSIM_FIXTURE, trace_store=store, name="canonical"
            )
        assert workload == "imported.canonical"


class TestApiFacade:
    def test_all_names_resolve(self):
        from repro import api

        missing = [name for name in api.__all__ if not hasattr(api, name)]
        assert not missing

    def test_simulate_point_cores_identical(self):
        from repro import api

        results = {
            core: api.simulate_point(
                "spec.mcf_like", "tlp", memory_accesses=1_000, core=core
            )
            for core in ("scalar", "batch")
        }
        assert dataclasses.asdict(results["batch"]) == (
            dataclasses.asdict(results["scalar"])
        )

    def test_run_sweep_smoke(self):
        from repro import api

        spec = api.SweepSpec(
            single_core=(
                api.SingleCoreSweep(
                    workloads=("spec.mcf_like",),
                    schemes=("baseline", "tlp"),
                    l1d_prefetchers=("ipcp",),
                ),
            )
        )
        config = api.ExperimentConfig(memory_accesses=1_000)
        results = api.run_sweep(
            spec, config=config, core="batch", use_result_cache=False, jobs=1
        )
        tlp = results.single_core("spec.mcf_like", "tlp", l1d_prefetcher="ipcp")
        baseline = results.single_core(
            "spec.mcf_like", "baseline", l1d_prefetcher="ipcp"
        )
        assert tlp.ipc > 0 and baseline.ipc > 0

    def test_load_trace(self):
        from repro import api

        trace = api.load_trace("spec.omnetpp_like", memory_accesses=500)
        assert trace.num_memory_accesses == 500
