"""Tests for the prefetchers (next-line, stride, IPCP, Berti, SPP) and PPF."""

import pytest

from repro.common.addresses import BLOCK_SIZE
from repro.common.types import MemLevel
from repro.prefetchers import make_l1d_prefetcher
from repro.prefetchers.base import AlwaysIssueFilter, PrefetchRequest
from repro.prefetchers.berti import BertiPrefetcher
from repro.prefetchers.ipcp import IPCPPrefetcher
from repro.prefetchers.next_line import NextLinePrefetcher
from repro.prefetchers.ppf import PerceptronPrefetchFilter
from repro.prefetchers.spp import SPPPrefetcher
from repro.prefetchers.stride import StridePrefetcher

BASE = 0x10_0000


class TestNextLine:
    def test_prefetches_next_blocks(self):
        prefetcher = NextLinePrefetcher(degree=2)
        requests = prefetcher.on_demand_access(0x400, BASE, hit=False, cycle=0)
        assert [r.vaddr for r in requests] == [BASE + 64, BASE + 128]

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            NextLinePrefetcher(degree=0)


class TestStride:
    def test_detects_constant_stride(self):
        prefetcher = StridePrefetcher(degree=1)
        requests = []
        for i in range(6):
            requests = prefetcher.on_demand_access(0x400, BASE + i * 256, False, 0)
        assert requests, "a trained stride entry should prefetch"
        assert requests[0].vaddr == BASE + 6 * 256

    def test_no_prefetch_on_random_pattern(self):
        prefetcher = StridePrefetcher()
        addresses = [BASE, BASE + 640, BASE + 64, BASE + 8192, BASE + 320]
        requests = []
        for address in addresses:
            requests = prefetcher.on_demand_access(0x400, address, False, 0)
        assert requests == []

    def test_reset(self):
        prefetcher = StridePrefetcher()
        for i in range(6):
            prefetcher.on_demand_access(0x400, BASE + i * 128, False, 0)
        prefetcher.reset()
        assert prefetcher.on_demand_access(0x400, BASE, False, 0) == []


class TestIPCP:
    def test_constant_stride_class_prefetches_ahead(self):
        prefetcher = IPCPPrefetcher()
        requests = []
        for i in range(8):
            requests = prefetcher.on_demand_access(0x400, BASE + i * BLOCK_SIZE, True, 0)
        assert prefetcher.class_counts["cs"] > 0
        targets = [r.vaddr for r in requests]
        assert BASE + 8 * BLOCK_SIZE + BLOCK_SIZE in targets or targets

    def test_next_line_fallback_on_miss(self):
        prefetcher = IPCPPrefetcher(nl_degree=1)
        requests = prefetcher.on_demand_access(0x999, BASE, hit=False, cycle=0)
        assert prefetcher.class_counts["nl"] == 1
        assert requests and requests[0].vaddr == BASE + BLOCK_SIZE

    def test_no_fallback_on_hit(self):
        prefetcher = IPCPPrefetcher()
        requests = prefetcher.on_demand_access(0x999, BASE, hit=True, cycle=0)
        assert requests == []

    def test_global_stream_class_on_dense_page(self):
        prefetcher = IPCPPrefetcher(gs_density_threshold=0.2)
        # One PC sweeping a page with irregular (non-constant) strides: once
        # the page is densely touched the GS class takes over.
        offsets = [(i * 7) % 64 for i in range(64)]
        for offset in offsets:
            prefetcher.on_demand_access(0x400, BASE + offset * BLOCK_SIZE, True, 0)
        assert prefetcher.class_counts["gs"] > 0

    def test_reset_clears_state(self):
        prefetcher = IPCPPrefetcher()
        for i in range(8):
            prefetcher.on_demand_access(0x400, BASE + i * BLOCK_SIZE, True, 0)
        prefetcher.reset()
        assert prefetcher.class_counts["cs"] == 0


class TestBerti:
    def test_learns_local_delta(self):
        prefetcher = BertiPrefetcher(relearn_interval=8, low_coverage=0.1)
        requests = []
        for i in range(32):
            requests = prefetcher.on_demand_access(0x400, BASE + i * BLOCK_SIZE, False, 0)
        assert requests, "Berti should learn the +1 block delta"
        deltas = [r.metadata["delta"] for r in requests]
        assert all(delta > 0 for delta in deltas)

    def test_confidence_reported_as_coverage(self):
        prefetcher = BertiPrefetcher(relearn_interval=8, low_coverage=0.1)
        requests = []
        for i in range(32):
            requests = prefetcher.on_demand_access(0x400, BASE + i * BLOCK_SIZE, False, 0)
        assert all(0.0 < r.confidence <= 1.0 for r in requests)

    def test_page_change_restarts_history(self):
        prefetcher = BertiPrefetcher()
        prefetcher.on_demand_access(0x400, BASE, False, 0)
        prefetcher.on_demand_access(0x400, BASE + (1 << 20), False, 0)
        key = 0x400 % prefetcher.table_entries
        assert len(prefetcher._histories[key]) == 1

    def test_reset(self):
        prefetcher = BertiPrefetcher()
        prefetcher.on_demand_access(0x400, BASE, False, 0)
        prefetcher.reset()
        key = 0x400 % prefetcher.table_entries
        assert prefetcher._histories[key] == []
        assert prefetcher._pages[key] == -1
        assert prefetcher._totals[key] == 0


class TestSPP:
    def test_learns_stream_and_prefetches(self):
        spp = SPPPrefetcher()
        requests = []
        for i in range(32):
            requests = spp.on_access(BASE + i * BLOCK_SIZE, 0x400, hit=False, cycle=0)
        assert requests, "SPP should follow the +1 delta signature path"
        assert all(r.fill_level in (MemLevel.L2C, MemLevel.LLC) for r in requests)

    def test_lookahead_confidence_decays(self):
        spp = SPPPrefetcher()
        requests = []
        for i in range(64):
            requests = spp.on_access(BASE + i * BLOCK_SIZE, 0x400, False, 0)
        confidences = [r.confidence for r in requests]
        assert confidences == sorted(confidences, reverse=True)

    def test_aggressive_preset_prefetches_deeper(self):
        conservative = SPPPrefetcher()
        aggressive = SPPPrefetcher(aggressive=True)
        assert aggressive.max_lookahead_depth > conservative.max_lookahead_depth

    def test_new_page_does_not_prefetch_immediately(self):
        spp = SPPPrefetcher()
        assert spp.on_access(BASE, 0x400, False, 0) == []

    def test_reset(self):
        spp = SPPPrefetcher()
        for i in range(16):
            spp.on_access(BASE + i * BLOCK_SIZE, 0x400, False, 0)
        spp.reset()
        assert spp.on_access(BASE, 0x400, False, 0) == []


class TestPPF:
    def make_request(self, delta=1, depth=0, confidence=0.8):
        return PrefetchRequest(
            vaddr=BASE,
            trigger_pc=0x400,
            trigger_vaddr=BASE - 64,
            confidence=confidence,
            metadata={
                "signature": 0x123,
                "delta": delta,
                "depth": depth,
                "path_confidence": confidence,
            },
        )

    def test_initially_accepts(self):
        ppf = PerceptronPrefetchFilter()
        assert ppf.consult(self.make_request(), BASE, False, 0).issue

    def test_learns_to_reject_useless_prefetches(self):
        ppf = PerceptronPrefetchFilter(issue_threshold=0)
        request = self.make_request()
        for _ in range(60):
            decision = ppf.consult(request, BASE, False, 0)
            ppf.train(decision.metadata, False)
        assert not ppf.consult(request, BASE, False, 0).issue
        assert ppf.reject_rate > 0.0

    def test_learns_to_keep_useful_prefetches(self):
        ppf = PerceptronPrefetchFilter(issue_threshold=0)
        request = self.make_request(delta=2)
        for _ in range(60):
            decision = ppf.consult(request, BASE, False, 0)
            ppf.train(decision.metadata, True)
        assert ppf.consult(request, BASE, False, 0).issue

    def test_storage_around_40kb(self):
        ppf = PerceptronPrefetchFilter()
        assert 18.0 < ppf.storage_kib() < 45.0

    def test_reset(self):
        ppf = PerceptronPrefetchFilter()
        decision = ppf.consult(self.make_request(), BASE, False, 0)
        ppf.train(decision.metadata, False)
        ppf.reset()
        assert ppf.consultations == 0


class TestFactoryAndFilters:
    def test_factory_names(self):
        assert isinstance(make_l1d_prefetcher("ipcp"), IPCPPrefetcher)
        assert isinstance(make_l1d_prefetcher("berti"), BertiPrefetcher)
        assert make_l1d_prefetcher("none") is None

    def test_factory_unknown(self):
        with pytest.raises(ValueError):
            make_l1d_prefetcher("bingo")

    def test_always_issue_filter(self):
        filt = AlwaysIssueFilter()
        request = PrefetchRequest(vaddr=BASE, trigger_pc=1, trigger_vaddr=2)
        assert filt.consult(request, BASE, False, 0).issue
