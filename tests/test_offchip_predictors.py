"""Tests for Hermes, FLP, SLP, TLP and the ablation variants."""

import pytest

from repro.core.flp import FirstLevelPerceptron
from repro.core.slp import SecondLevelPerceptron
from repro.core.storage import tlp_storage_breakdown
from repro.core.tlp import TLPConfig, TwoLevelPerceptron
from repro.core.variants import ABLATION_VARIANTS, AlwaysDelayedFLP, build_ablation_variant
from repro.predictors.base import NullOffChipPredictor, OffChipAction
from repro.predictors.hermes import HermesPredictor
from repro.prefetchers.base import PrefetchRequest


def train_predictor(predictor, pc, vaddr, outcome, repetitions=20):
    """Repeatedly predict+train the same access with a fixed outcome."""
    decision = None
    for _ in range(repetitions):
        decision = predictor.predict(pc, vaddr, cycle=0)
        predictor.train(decision.metadata, outcome)
    return predictor.predict(pc, vaddr, cycle=0)


class TestNullPredictor:
    def test_never_predicts_offchip(self):
        predictor = NullOffChipPredictor()
        decision = predictor.predict(0x400, 0x1000, 0)
        assert decision.action is OffChipAction.NONE
        assert not decision.predicted_offchip


class TestHermes:
    def test_learns_offchip_loads(self):
        hermes = HermesPredictor(activation_threshold=2)
        decision = train_predictor(hermes, 0x400, 0x1000, outcome=True)
        assert decision.predicted_offchip
        assert decision.action is OffChipAction.IMMEDIATE

    def test_learns_onchip_loads(self):
        hermes = HermesPredictor(activation_threshold=2)
        decision = train_predictor(hermes, 0x404, 0x2000, outcome=False)
        assert not decision.predicted_offchip
        assert decision.action is OffChipAction.NONE

    def test_last_prediction_exposed(self):
        hermes = HermesPredictor()
        train_predictor(hermes, 0x400, 0x1000, outcome=True)
        assert hermes.last_prediction is True

    def test_storage_is_a_few_kib(self):
        hermes = HermesPredictor()
        assert 2.0 < hermes.storage_kib() < 6.0

    def test_reset(self):
        hermes = HermesPredictor()
        train_predictor(hermes, 0x400, 0x1000, outcome=True)
        hermes.reset()
        decision = hermes.predict(0x400, 0x1000, 0)
        assert decision.confidence == 0


class TestFLP:
    def test_three_band_decisions(self):
        flp = FirstLevelPerceptron(tau_high=16, tau_low=2)
        offchip = train_predictor(flp, 0x400, 0x1000, outcome=True, repetitions=40)
        assert offchip.action is OffChipAction.IMMEDIATE
        onchip = train_predictor(flp, 0x500, 0x9000, outcome=False, repetitions=40)
        assert onchip.action is OffChipAction.NONE

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            FirstLevelPerceptron(tau_high=1, tau_low=5)

    def test_selective_delay_disabled_promotes_to_immediate(self):
        flp = FirstLevelPerceptron(tau_high=10_000, tau_low=-100, selective_delay=False)
        decision = flp.predict(0x400, 0x1000, 0)
        # With tau_low below any confidence and delay disabled, the mid band
        # maps to IMMEDIATE.
        assert decision.action is OffChipAction.IMMEDIATE

    def test_mid_band_is_delayed_with_selective_delay(self):
        flp = FirstLevelPerceptron(tau_high=10_000, tau_low=-100, selective_delay=True)
        decision = flp.predict(0x400, 0x1000, 0)
        assert decision.action is OffChipAction.DELAYED
        assert decision.predicted_offchip

    def test_decision_counters(self):
        flp = FirstLevelPerceptron(tau_high=10_000, tau_low=10_000)
        flp.predict(0x1, 0x2, 0)
        assert flp.negative_decisions == 1

    def test_storage_matches_hermes_scale(self):
        flp = FirstLevelPerceptron()
        assert 2.5 < flp.storage_kib() < 4.0


class TestSLP:
    def make_request(self, vaddr=0x2000, pc=0x400):
        return PrefetchRequest(vaddr=vaddr, trigger_pc=pc, trigger_vaddr=vaddr - 64)

    def test_initially_issues_prefetches(self):
        slp = SecondLevelPerceptron(tau_pref=8)
        decision = slp.consult(self.make_request(), 0x2000, False, 0)
        assert decision.issue

    def test_learns_to_discard_offchip_prefetches(self):
        slp = SecondLevelPerceptron(tau_pref=8)
        request = self.make_request()
        for _ in range(40):
            decision = slp.consult(request, 0x2000, True, 0)
            slp.train(decision.metadata, True)
        final = slp.consult(request, 0x2000, True, 0)
        assert not final.issue
        assert slp.discard_rate > 0.0

    def test_learns_to_keep_onchip_prefetches(self):
        slp = SecondLevelPerceptron(tau_pref=8)
        request = self.make_request()
        for _ in range(40):
            decision = slp.consult(request, 0x2000, False, 0)
            slp.train(decision.metadata, False)
        assert slp.consult(request, 0x2000, False, 0).issue

    def test_leveling_feature_changes_prediction_inputs(self):
        request = self.make_request()
        with_bit = SecondLevelPerceptron(use_leveling_feature=True).consult(
            request, 0x2000, True, 0
        )
        without_bit = SecondLevelPerceptron(use_leveling_feature=True).consult(
            request, 0x2000, False, 0
        )
        assert with_bit.metadata["indices"] != without_bit.metadata["indices"]

    def test_leveling_feature_can_be_disabled(self):
        request = self.make_request()
        with_bit = SecondLevelPerceptron(use_leveling_feature=False).consult(
            request, 0x2000, True, 0
        )
        without_bit = SecondLevelPerceptron(use_leveling_feature=False).consult(
            request, 0x2000, False, 0
        )
        assert with_bit.metadata["indices"] == without_bit.metadata["indices"]

    def test_reset(self):
        slp = SecondLevelPerceptron()
        request = self.make_request()
        decision = slp.consult(request, 0x2000, False, 0)
        slp.train(decision.metadata, True)
        slp.reset()
        assert slp.consultations == 0
        assert slp.consult(request, 0x2000, False, 0).confidence == 0


class TestTLP:
    def test_bundles_flp_and_slp(self):
        tlp = TwoLevelPerceptron()
        assert isinstance(tlp.flp, FirstLevelPerceptron)
        assert isinstance(tlp.slp, SecondLevelPerceptron)

    def test_storage_budget_close_to_7kb(self):
        breakdown = tlp_storage_breakdown(TwoLevelPerceptron())
        assert 5.0 < breakdown.total < 9.0
        assert breakdown.flp_total < 4.0
        assert breakdown.slp_total < 4.5

    def test_storage_table_rows(self):
        breakdown = tlp_storage_breakdown()
        table = breakdown.as_table()
        assert table[-1][0] == "Total"
        assert table[-1][1] == pytest.approx(breakdown.total)

    def test_config_propagates_thresholds(self):
        tlp = TwoLevelPerceptron(TLPConfig(tau_high=30, tau_low=5, tau_pref=12))
        assert tlp.flp.tau_high == 30
        assert tlp.flp.tau_low == 5
        assert tlp.slp.tau_pref == 12

    def test_attach_wires_hierarchy(self):
        from repro.memory.hierarchy import MemoryHierarchy
        from repro.common.config import cascade_lake_single_core

        hierarchy = MemoryHierarchy(cascade_lake_single_core())
        tlp = TwoLevelPerceptron()
        tlp.attach(hierarchy)
        assert hierarchy.offchip_predictor is tlp.flp
        assert hierarchy.l1d_prefetch_filter is tlp.slp

    def test_summary_keys(self):
        summary = TwoLevelPerceptron().summary()
        assert "storage_kib" in summary
        assert "slp_discard_rate" in summary

    def test_reset(self):
        tlp = TwoLevelPerceptron()
        tlp.flp.predict(1, 2, 0)
        tlp.reset()
        assert tlp.flp.perceptron.stats.predictions == 0


class TestAblationVariants:
    def test_all_variants_buildable(self):
        for name in ABLATION_VARIANTS:
            variant = build_ablation_variant(name)
            assert variant.name == name

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            build_ablation_variant("nope")

    def test_flp_variant_has_no_filter(self):
        variant = build_ablation_variant("flp")
        assert variant.offchip_predictor is not None
        assert variant.l1d_prefetch_filter is None

    def test_slp_variant_has_no_offchip_predictor(self):
        variant = build_ablation_variant("slp")
        assert variant.offchip_predictor is None
        assert variant.l1d_prefetch_filter is not None

    def test_tsp_disables_selective_delay_and_leveling(self):
        variant = build_ablation_variant("tsp")
        assert variant.offchip_predictor.selective_delay is False
        assert variant.l1d_prefetch_filter.use_leveling_feature is False

    def test_tlp_variant_enables_everything(self):
        variant = build_ablation_variant("tlp")
        assert variant.offchip_predictor.selective_delay is True
        assert variant.l1d_prefetch_filter.use_leveling_feature is True

    def test_always_delayed_flp_never_immediate(self):
        predictor = AlwaysDelayedFLP(tau_high=-100, tau_low=-200)
        decision = predictor.predict(0x400, 0x1000, 0)
        assert decision.action is OffChipAction.DELAYED
