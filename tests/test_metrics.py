"""Tests for the evaluation metrics."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.stats.metrics import (
    accuracy,
    geometric_mean,
    geometric_mean_speedup,
    mpki,
    percent_change,
    ppki,
    speedup_percent,
    weighted_speedup,
)


class TestPerKiloMetrics:
    def test_mpki(self):
        assert mpki(50, 1000) == pytest.approx(50.0)
        assert mpki(0, 1000) == 0.0

    def test_mpki_invalid_instructions(self):
        with pytest.raises(ValueError):
            mpki(1, 0)

    def test_ppki(self):
        assert ppki(200, 100_000) == pytest.approx(2.0)

    def test_accuracy(self):
        assert accuracy(30, 70) == pytest.approx(0.3)
        assert accuracy(0, 0) == 0.0


class TestChangesAndSpeedups:
    def test_percent_change(self):
        assert percent_change(110, 100) == pytest.approx(10.0)
        assert percent_change(90, 100) == pytest.approx(-10.0)
        assert percent_change(5, 0) == 0.0

    def test_speedup_percent(self):
        assert speedup_percent(1.2, 1.0) == pytest.approx(20.0)
        with pytest.raises(ValueError):
            speedup_percent(1.0, 0.0)

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_geometric_mean_speedup(self):
        assert geometric_mean_speedup([1.1, 1.1], [1.0, 1.0]) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            geometric_mean_speedup([1.0], [1.0, 2.0])

    def test_weighted_speedup(self):
        assert weighted_speedup([0.5, 0.5], [1.0, 1.0]) == pytest.approx(1.0)
        assert weighted_speedup([1.0, 1.0], [1.0, 1.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            weighted_speedup([], [])
        with pytest.raises(ValueError):
            weighted_speedup([1.0], [0.0])


@given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=20))
def test_geometric_mean_bounded_by_min_and_max(values):
    result = geometric_mean(values)
    assert min(values) - 1e-9 <= result <= max(values) + 1e-9


@given(
    st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=8),
    st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=8),
)
def test_weighted_speedup_positive(shared, single):
    size = min(len(shared), len(single))
    result = weighted_speedup(shared[:size], single[:size])
    assert result > 0


@given(st.floats(min_value=0.01, max_value=100), st.floats(min_value=0.01, max_value=100))
def test_speedup_percent_sign(ipc, baseline):
    value = speedup_percent(ipc, baseline)
    if ipc > baseline:
        assert value > 0
    elif ipc < baseline:
        assert value < 0
