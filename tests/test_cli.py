"""Tests for the command-line interface."""

import pytest

from repro.cli import FIGURES, build_parser, main


class TestParser:
    def test_list_command_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.workload == "bfs.urand"
        assert "tlp" in args.schemes

    def test_run_command_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--schemes", "magic"])

    def test_figure_command(self):
        args = build_parser().parse_args(["figure", "fig01"])
        assert args.name == "fig01"

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "tlp" in output
        assert "spec.mcf_like" in output

    def test_unknown_figure_returns_error(self, capsys):
        assert main(["figure", "fig99"]) == 1

    def test_figure_table_mapping_complete(self):
        # Every evaluation figure of the paper has a CLI entry.
        for expected in ("fig01", "fig10", "fig13", "fig15", "fig16", "fig17", "table02"):
            assert expected in FIGURES

    def test_run_command_executes_small_simulation(self, capsys):
        assert main(["run", "--workload", "spec.sphinx_like", "--schemes", "baseline",
                     "--accesses", "1500"]) == 0
        output = capsys.readouterr().out
        assert "ipc=" in output
