"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import FIGURES, build_parser, main


class TestParser:
    def test_list_command_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.workload == "bfs.urand"
        assert "tlp" in args.schemes

    def test_run_command_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--schemes", "magic"])

    def test_figure_command(self):
        args = build_parser().parse_args(["figure", "fig01"])
        assert args.name == "fig01"
        assert args.jobs is None
        assert not args.quick

    def test_figure_all_with_engine_flags(self):
        args = build_parser().parse_args(
            ["figure", "all", "--jobs", "4", "--quick", "--no-cache"]
        )
        assert args.name == "all"
        assert args.jobs == 4
        assert args.quick and args.no_cache

    def test_sweep_command_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.command == "sweep"
        assert args.workloads is None
        assert args.schemes == ["baseline", "tlp"]
        assert not args.multicore

    def test_sweep_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--schemes", "magic"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "tlp" in output
        assert "spec.mcf_like" in output

    def test_unknown_figure_returns_error(self, capsys):
        assert main(["figure", "fig99"]) == 1

    def test_figure_table_mapping_complete(self):
        # Every evaluation figure of the paper has a CLI entry.
        for expected in ("fig01", "fig10", "fig13", "fig15", "fig16", "fig17", "table02"):
            assert expected in FIGURES

    def test_run_command_executes_small_simulation(self, capsys):
        assert main(["run", "--workload", "spec.sphinx_like", "--schemes", "baseline",
                     "--accesses", "1500"]) == 0
        output = capsys.readouterr().out
        assert "ipc=" in output


class TestFigureCommand:
    def test_figure_runs_through_registry(self, capsys):
        assert main(["figure", "fig01", "--quick", "--no-cache",
                     "--jobs", "2", "--accesses", "900"]) == 0
        output = capsys.readouterr().out
        assert "Figure 1" in output
        assert "bfs.urand" in output
        assert "jobs=2" in output

    def test_figure_warns_when_spec_pins_the_prefetcher(self, capsys):
        # fig01 pins IPCP (the paper's motivation figure); asking for berti
        # must say so instead of silently printing IPCP numbers.
        assert main(["figure", "fig01", "--quick", "--no-cache",
                     "--accesses", "900", "--prefetchers", "berti"]) == 0
        output = capsys.readouterr().out
        assert "--prefetchers berti" in output
        assert "has no effect" in output

    def test_figure_all_executes_every_registered_experiment(self, capsys):
        # Tiny budgets keep this a smoke test; one engine batch per figure.
        assert main(["figure", "all", "--quick", "--no-cache",
                     "--jobs", "2", "--accesses", "700",
                     "--multicore-accesses", "500"]) == 0
        output = capsys.readouterr().out
        from repro.experiments.spec import registered_experiments

        assert f"figures: {len(registered_experiments())} in" in output
        assert "Figure 1" in output and "Table II" in output


class TestSweepCommand:
    def test_sweep_runs_user_defined_points(self, capsys):
        assert main(["sweep", "--quick", "--no-cache",
                     "--workloads", "bfs.urand", "spec.mcf_like",
                     "--schemes", "baseline", "tlp",
                     "--accesses", "900", "--jobs", "2"]) == 0
        output = capsys.readouterr().out
        assert "bfs.urand/tlp/ipcp" in output
        assert "speedup (%)" in output
        assert "sweep: 4 points" in output

    def test_sweep_list_prints_points_without_simulating(self, capsys):
        assert main(["sweep", "--quick", "--no-cache", "--list",
                     "--workloads", "bfs.urand", "--schemes", "baseline"]) == 0
        output = capsys.readouterr().out
        assert "1 sweep points" in output
        assert "bfs.urand/baseline/ipcp" in output

    def test_sweep_spec_json(self, capsys, tmp_path):
        spec_path = tmp_path / "sweep.json"
        spec_path.write_text(json.dumps({
            "single_core": [{
                "workloads": ["spec.sphinx_like"],
                "schemes": ["baseline"],
                "memory_accesses": 800,
            }],
        }))
        assert main(["sweep", "--quick", "--no-cache",
                     "--spec-json", str(spec_path)]) == 0
        output = capsys.readouterr().out
        assert "spec.sphinx_like/baseline/ipcp" in output

    def test_sweep_rejects_unknown_workload_up_front(self, capsys):
        # A typo is one clean CLI error, not a worker traceback.
        assert main(["sweep", "--quick", "--no-cache",
                     "--workloads", "bfs.uran", "--schemes", "baseline"]) == 2
        output = capsys.readouterr().out
        assert "unknown workloads: bfs.uran" in output

    def test_sweep_bandwidths_imply_multicore(self, capsys):
        # --bandwidths/--suites shape the multi-core block, so passing one
        # enables it instead of being silently ignored.
        assert main(["sweep", "--quick", "--no-cache", "--list",
                     "--workloads", "bfs.urand", "--schemes", "baseline",
                     "--bandwidths", "1.6", "6.4"]) == 0
        output = capsys.readouterr().out
        assert "multi_core" in output

    def test_sweep_imported_suite_without_traces_is_an_error(self, capsys, tmp_path):
        # --suites imported must not silently compile zero mixes.
        assert main(["sweep", "--quick", "--no-cache", "--multicore",
                     "--suites", "imported",
                     "--trace-dir", str(tmp_path / "empty_store")]) == 2
        assert "no imported traces" in capsys.readouterr().out

    def test_sweep_invalid_spec_json_is_an_error(self, capsys, tmp_path):
        spec_path = tmp_path / "bad.json"
        spec_path.write_text(json.dumps({"single_core": [{"scheme": ["tlp"]}]}))
        assert main(["sweep", "--spec-json", str(spec_path)]) == 2
        assert "invalid sweep spec" in capsys.readouterr().out


class TestCampaignCommand:
    def test_campaign_parser_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.command == "campaign"
        assert args.jobs is None
        assert not args.no_cache
        assert not args.list

    def test_campaign_list_prints_points_without_simulating(self, capsys, tmp_path):
        assert main([
            "campaign", "--list", "--schemes", "tlp", "--prefetchers", "ipcp",
            "--accesses", "1000", "--cache-dir", str(tmp_path),
        ]) == 0
        output = capsys.readouterr().out
        assert "campaign points" in output
        assert "bfs.urand/tlp/ipcp" in output
        assert "missing" in output
        # Listing must not simulate anything (no cache entries created).
        assert list(tmp_path.glob("*.json")) == []

    def test_campaign_simulates_then_lists_cached(self, capsys, tmp_path):
        common = ["--schemes", "tlp", "--prefetchers", "ipcp",
                  "--accesses", "600", "--cache-dir", str(tmp_path), "--jobs", "1"]
        assert main(["campaign"] + common) == 0
        output = capsys.readouterr().out
        assert "simulated" in output
        assert "geomean speedup" in output
        assert main(["campaign", "--list"] + common) == 0
        output = capsys.readouterr().out
        assert "missing" not in output
        assert "cached" in output


class TestCacheMerge:
    def test_merge_combines_shard_caches_with_per_source_summary(
        self, capsys, tmp_path
    ):
        shard_a = tmp_path / "shard0"
        shard_b = tmp_path / "shard1"
        merged = tmp_path / "merged"
        common = ["--schemes", "tlp", "--prefetchers", "ipcp",
                  "--accesses", "600", "--jobs", "1", "--no-trace-store"]
        assert main(["campaign", "--shard", "0/2",
                     "--cache-dir", str(shard_a)] + common) == 0
        assert main(["campaign", "--shard", "1/2",
                     "--cache-dir", str(shard_b)] + common) == 0
        capsys.readouterr()

        assert main(["cache", "--dir", str(merged), "merge",
                     str(shard_a), str(shard_b)]) == 0
        output = capsys.readouterr().out
        # One summary line per source, plus the combined total.
        assert f"{shard_a}:" in output
        assert f"{shard_b}:" in output
        assert "merged" in output
        expected = (len(list(shard_a.glob("*.json")))
                    + len(list(shard_b.glob("*.json"))))
        assert expected > 0
        assert len(list(merged.glob("*.json"))) == expected

        # Merging a source again copies nothing (duplicates are skipped).
        assert main(["cache", "--dir", str(merged), "merge",
                     str(shard_a)]) == 0
        output = capsys.readouterr().out
        assert "0 copied" in output

        # The merged cache serves the full (unsharded) campaign.
        assert main(["campaign", "--list",
                     "--cache-dir", str(merged)] + common) == 0
        assert "missing" not in capsys.readouterr().out

    def test_merge_missing_source_is_an_error(self, capsys, tmp_path):
        assert main(["cache", "--dir", str(tmp_path / "dst"), "merge",
                     str(tmp_path / "nope")]) == 1
