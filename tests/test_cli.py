"""Tests for the command-line interface."""

import pytest

from repro.cli import FIGURES, build_parser, main


class TestParser:
    def test_list_command_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.workload == "bfs.urand"
        assert "tlp" in args.schemes

    def test_run_command_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--schemes", "magic"])

    def test_figure_command(self):
        args = build_parser().parse_args(["figure", "fig01"])
        assert args.name == "fig01"

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "tlp" in output
        assert "spec.mcf_like" in output

    def test_unknown_figure_returns_error(self, capsys):
        assert main(["figure", "fig99"]) == 1

    def test_figure_table_mapping_complete(self):
        # Every evaluation figure of the paper has a CLI entry.
        for expected in ("fig01", "fig10", "fig13", "fig15", "fig16", "fig17", "table02"):
            assert expected in FIGURES

    def test_run_command_executes_small_simulation(self, capsys):
        assert main(["run", "--workload", "spec.sphinx_like", "--schemes", "baseline",
                     "--accesses", "1500"]) == 0
        output = capsys.readouterr().out
        assert "ipc=" in output


class TestCampaignCommand:
    def test_campaign_parser_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.command == "campaign"
        assert args.jobs is None
        assert not args.no_cache
        assert not args.list

    def test_campaign_list_prints_points_without_simulating(self, capsys, tmp_path):
        assert main([
            "campaign", "--list", "--schemes", "tlp", "--prefetchers", "ipcp",
            "--accesses", "1000", "--cache-dir", str(tmp_path),
        ]) == 0
        output = capsys.readouterr().out
        assert "campaign points" in output
        assert "bfs.urand/tlp/ipcp" in output
        assert "missing" in output
        # Listing must not simulate anything (no cache entries created).
        assert list(tmp_path.glob("*.json")) == []

    def test_campaign_simulates_then_lists_cached(self, capsys, tmp_path):
        common = ["--schemes", "tlp", "--prefetchers", "ipcp",
                  "--accesses", "600", "--cache-dir", str(tmp_path), "--jobs", "1"]
        assert main(["campaign"] + common) == 0
        output = capsys.readouterr().out
        assert "simulated" in output
        assert "geomean speedup" in output
        assert main(["campaign", "--list"] + common) == 0
        output = capsys.readouterr().out
        assert "missing" not in output
        assert "cached" in output
