"""Tests for the composed memory hierarchy."""

import pytest

from repro.common.config import cascade_lake_multi_core, cascade_lake_single_core
from repro.common.types import MemLevel
from repro.core.slp import SecondLevelPerceptron
from repro.core.tlp import TwoLevelPerceptron
from repro.memory.hierarchy import MemoryHierarchy, SharedMemory
from repro.predictors.base import (
    OffChipAction,
    OffChipDecision,
    OffChipPredictor,
)
from repro.prefetchers.next_line import NextLinePrefetcher


class ForcedPredictor(OffChipPredictor):
    """Test double that always returns a fixed action."""

    name = "forced"

    def __init__(self, action):
        self.action = action
        self.trained = []
        self.last_prediction = action is not OffChipAction.NONE

    def predict(self, pc, vaddr, cycle):
        return OffChipDecision(
            action=self.action,
            predicted_offchip=self.action is not OffChipAction.NONE,
            confidence=10,
            metadata={"token": (pc, vaddr)},
        )

    def train(self, metadata, went_offchip):
        self.trained.append((metadata.get("token"), went_offchip))


def make_hierarchy(**kwargs):
    return MemoryHierarchy(cascade_lake_single_core(), **kwargs)


class TestDemandPath:
    def test_cold_miss_goes_to_dram(self):
        hierarchy = make_hierarchy()
        outcome = hierarchy.demand_access(0x400, 0x10_0000, cycle=0)
        assert outcome.served_by is MemLevel.DRAM
        assert hierarchy.dram.stats.demand_transactions == 1

    def test_second_access_hits_l1d(self):
        hierarchy = make_hierarchy()
        hierarchy.demand_access(0x400, 0x10_0000, cycle=0)
        outcome = hierarchy.demand_access(0x400, 0x10_0000, cycle=1000)
        assert outcome.served_by is MemLevel.L1D
        assert outcome.latency >= hierarchy.l1d.latency

    def test_latency_accumulates_down_the_hierarchy(self):
        hierarchy = make_hierarchy()
        outcome = hierarchy.demand_access(0x400, 0x20_0000, cycle=0)
        expected_minimum = (
            hierarchy.l1d.latency
            + hierarchy.l2c.latency
            + hierarchy.llc.latency
            + hierarchy.dram.config.access_latency
        )
        assert outcome.latency >= expected_minimum

    def test_served_by_statistics(self):
        hierarchy = make_hierarchy()
        hierarchy.demand_access(0x400, 0x30_0000, cycle=0)
        hierarchy.demand_access(0x400, 0x30_0000, cycle=10)
        assert hierarchy.stats.served_by[MemLevel.DRAM] == 1
        assert hierarchy.stats.served_by[MemLevel.L1D] == 1

    def test_stores_counted_separately(self):
        hierarchy = make_hierarchy()
        hierarchy.demand_access(0x400, 0x40_0000, cycle=0, is_write=True)
        assert hierarchy.stats.demand_stores == 1
        assert hierarchy.stats.demand_loads == 0

    def test_mpki_helper(self):
        hierarchy = make_hierarchy()
        hierarchy.demand_access(0x400, 0x40_0000, cycle=0)
        assert hierarchy.mpki(MemLevel.L1D, 1000) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            hierarchy.mpki(MemLevel.DRAM, 1000)
        with pytest.raises(ValueError):
            hierarchy.mpki(MemLevel.L1D, 0)


class TestSpeculativeRequests:
    def test_immediate_prediction_counts_speculative_transaction(self):
        predictor = ForcedPredictor(OffChipAction.IMMEDIATE)
        hierarchy = make_hierarchy(offchip_predictor=predictor)
        outcome = hierarchy.demand_access(0x400, 0x50_0000, cycle=0)
        assert outcome.speculative_dram_issued
        assert hierarchy.dram.stats.speculative_transactions == 1
        # The demand merges with the speculative request: no demand transaction.
        assert hierarchy.dram.stats.demand_transactions == 0

    def test_correct_speculation_reduces_effective_latency(self):
        predictor = ForcedPredictor(OffChipAction.IMMEDIATE)
        hierarchy = make_hierarchy(offchip_predictor=predictor)
        outcome = hierarchy.demand_access(0x400, 0x50_0000, cycle=0)
        assert outcome.served_by is MemLevel.DRAM
        assert outcome.effective_latency < outcome.latency

    def test_wrong_speculation_wastes_a_transaction(self):
        predictor = ForcedPredictor(OffChipAction.IMMEDIATE)
        hierarchy = make_hierarchy(offchip_predictor=predictor)
        hierarchy.demand_access(0x400, 0x60_0000, cycle=0)
        before = hierarchy.dram.stats.total_transactions
        outcome = hierarchy.demand_access(0x400, 0x60_0000, cycle=1000)
        assert outcome.served_by is MemLevel.L1D
        assert hierarchy.dram.stats.total_transactions == before + 1

    def test_delayed_prediction_saved_on_l1d_hit(self):
        predictor = ForcedPredictor(OffChipAction.DELAYED)
        hierarchy = make_hierarchy(offchip_predictor=predictor)
        hierarchy.demand_access(0x400, 0x70_0000, cycle=0)
        before = hierarchy.dram.stats.speculative_transactions
        hierarchy.demand_access(0x400, 0x70_0000, cycle=1000)
        assert hierarchy.dram.stats.speculative_transactions == before
        assert hierarchy.stats.delayed_predictions_saved == 1

    def test_delayed_prediction_fires_on_l1d_miss(self):
        predictor = ForcedPredictor(OffChipAction.DELAYED)
        hierarchy = make_hierarchy(offchip_predictor=predictor)
        hierarchy.demand_access(0x400, 0x80_0000, cycle=0)
        assert hierarchy.stats.delayed_speculative_requests == 1
        assert hierarchy.dram.stats.speculative_transactions == 1

    def test_offchip_prediction_location_breakdown(self):
        predictor = ForcedPredictor(OffChipAction.IMMEDIATE)
        hierarchy = make_hierarchy(offchip_predictor=predictor)
        hierarchy.demand_access(0x400, 0x90_0000, cycle=0)   # DRAM resident
        hierarchy.demand_access(0x400, 0x90_0000, cycle=500)  # L1D resident
        locations = hierarchy.stats.offchip_prediction_location
        assert locations[MemLevel.DRAM] == 1
        assert locations[MemLevel.L1D] == 1

    def test_predictor_trained_with_true_outcome(self):
        predictor = ForcedPredictor(OffChipAction.NONE)
        hierarchy = make_hierarchy(offchip_predictor=predictor)
        hierarchy.demand_access(0x400, 0xA0_0000, cycle=0)
        hierarchy.demand_access(0x400, 0xA0_0000, cycle=100)
        assert predictor.trained[0][1] is True
        assert predictor.trained[1][1] is False


class TestPrefetchPath:
    def test_next_line_prefetch_issued_and_tracked(self):
        hierarchy = make_hierarchy(l1d_prefetcher=NextLinePrefetcher(degree=1))
        hierarchy.demand_access(0x400, 0xB0_0000, cycle=0)
        assert hierarchy.stats.l1d_prefetches_issued == 1
        assert hierarchy.dram.stats.l1d_prefetch_transactions >= 1

    def test_prefetch_hit_marks_useful(self):
        hierarchy = make_hierarchy(l1d_prefetcher=NextLinePrefetcher(degree=1))
        hierarchy.demand_access(0x400, 0xB0_0000, cycle=0)
        outcome = hierarchy.demand_access(0x400, 0xB0_0040, cycle=1000)
        assert outcome.served_by is MemLevel.L1D
        assert outcome.prefetch_hit
        assert hierarchy.stats.useful_l1d_prefetches == 1

    def test_unused_prefetch_counts_inaccurate_at_finalize(self):
        hierarchy = make_hierarchy(l1d_prefetcher=NextLinePrefetcher(degree=1))
        hierarchy.demand_access(0x400, 0xC0_0000, cycle=0)
        hierarchy.finalize()
        assert hierarchy.stats.useless_l1d_prefetches == 1

    def test_prefetch_already_resident_dropped(self):
        hierarchy = make_hierarchy(l1d_prefetcher=NextLinePrefetcher(degree=1))
        hierarchy.demand_access(0x400, 0xD0_0040, cycle=0)
        hierarchy.demand_access(0x400, 0xD0_0000, cycle=100)
        assert hierarchy.stats.l1d_prefetches_dropped_resident >= 1

    def test_in_flight_prefetch_charges_remaining_latency(self):
        hierarchy = make_hierarchy(l1d_prefetcher=NextLinePrefetcher(degree=1))
        hierarchy.demand_access(0x400, 0xE0_0000, cycle=0)
        # Access the prefetched block immediately: the fill has not arrived.
        outcome = hierarchy.demand_access(0x400, 0xE0_0040, cycle=1)
        assert outcome.served_by is MemLevel.L1D
        assert outcome.latency > hierarchy.l1d.latency

    def test_slp_filter_blocks_prefetches_when_trained(self):
        slp = SecondLevelPerceptron(tau_pref=0)
        hierarchy = make_hierarchy(
            l1d_prefetcher=NextLinePrefetcher(degree=1), l1d_prefetch_filter=slp
        )
        base = 0xF0_0000
        for index in range(60):
            hierarchy.demand_access(0x400, base + index * 0x10_0000, cycle=index * 500)
        assert hierarchy.stats.l1d_prefetches_filtered > 0

    def test_prefetch_accuracy_sources_tracked(self):
        hierarchy = make_hierarchy(l1d_prefetcher=NextLinePrefetcher(degree=1))
        hierarchy.demand_access(0x400, 0x11_0000, cycle=0)
        hierarchy.demand_access(0x400, 0x11_0040, cycle=1000)
        hierarchy.finalize()
        total_accurate = sum(hierarchy.stats.accurate_prefetch_source.values())
        assert total_accurate == hierarchy.stats.useful_l1d_prefetches


class TestSharedMemory:
    def test_two_cores_share_llc_and_dram(self):
        config = cascade_lake_multi_core(2)
        shared = SharedMemory(config)
        core0 = MemoryHierarchy(config, shared=shared, core_id=0)
        core1 = MemoryHierarchy(config, shared=shared, core_id=1)
        core0.demand_access(0x400, 0x12_0000, cycle=0)
        core1.demand_access(0x400, 0x13_0000, cycle=0)
        assert shared.dram.stats.total_transactions == 2
        assert core0.llc is core1.llc

    def test_llc_scaled_by_core_count(self):
        config = cascade_lake_multi_core(4)
        shared = SharedMemory(config)
        assert shared.llc.config.size_bytes == 4 * 1408 * 1024

    def test_reset_stats_keeps_cache_contents(self):
        hierarchy = make_hierarchy()
        hierarchy.demand_access(0x400, 0x14_0000, cycle=0)
        hierarchy.reset_stats()
        assert hierarchy.stats.demand_loads == 0
        outcome = hierarchy.demand_access(0x400, 0x14_0000, cycle=10)
        assert outcome.served_by is MemLevel.L1D


class TestTLPIntegration:
    def test_tlp_attached_hierarchy_runs(self):
        tlp = TwoLevelPerceptron()
        hierarchy = make_hierarchy(l1d_prefetcher=NextLinePrefetcher(degree=1))
        tlp.attach(hierarchy)
        for index in range(50):
            hierarchy.demand_access(0x400 + index % 3, 0x20_0000 + index * 0x1000, cycle=index * 50)
        assert hierarchy.stats.demand_loads == 50
        assert tlp.flp.perceptron.stats.predictions == 50
