"""Tests for the Table III system configuration dataclasses."""

import pytest

from repro.common.config import (
    CacheConfig,
    CoreConfig,
    DRAMConfig,
    SystemConfig,
    cascade_lake_multi_core,
    cascade_lake_single_core,
)


class TestCacheConfig:
    def test_l1d_sets(self):
        config = CacheConfig("L1D", 32 * 1024, 8, 4, 10)
        assert config.num_sets == 64

    def test_llc_sets(self):
        config = CacheConfig("LLC", 1408 * 1024, 11, 36, 64)
        assert config.num_sets == 2048

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig("bad", 1000, 3, 1, 1)


class TestDRAMConfig:
    def test_cycles_per_transaction_single_core(self):
        dram = DRAMConfig(bandwidth_gbps=12.8, core_frequency_ghz=3.8)
        assert dram.cycles_per_transaction == pytest.approx(19.0, rel=0.01)

    def test_cycles_per_transaction_scales_with_bandwidth(self):
        slow = DRAMConfig(bandwidth_gbps=3.2)
        fast = DRAMConfig(bandwidth_gbps=25.6)
        assert slow.cycles_per_transaction == pytest.approx(
            8 * fast.cycles_per_transaction, rel=0.01
        )


class TestSystemConfig:
    def test_table_iii_defaults(self):
        system = cascade_lake_single_core()
        assert system.core.width == 4
        assert system.core.rob_size == 224
        assert system.l1d.size_bytes == 32 * 1024
        assert system.l2c.size_bytes == 1024 * 1024
        assert system.llc.size_bytes == 1408 * 1024
        assert system.core.offchip_predictor_latency == 6

    def test_multi_core_llc_scales_per_core(self):
        system = cascade_lake_multi_core(4)
        assert system.scaled_llc().size_bytes == 4 * 1408 * 1024

    def test_multi_core_bandwidth_is_per_core(self):
        system = cascade_lake_multi_core(4)
        assert system.dram.bandwidth_gbps == pytest.approx(12.8)

    def test_with_dram_bandwidth(self):
        system = cascade_lake_multi_core(4).with_dram_bandwidth(1.6)
        assert system.dram.bandwidth_gbps == pytest.approx(6.4)
        # The original configuration is unchanged (frozen dataclass).
        assert cascade_lake_multi_core(4).dram.bandwidth_gbps == pytest.approx(12.8)


class TestCoreConfig:
    def test_defaults_match_paper(self):
        core = CoreConfig()
        assert core.width == 4
        assert core.rob_size == 224
        assert core.frequency_ghz == pytest.approx(3.8)
