"""Unit tests for address arithmetic helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.common.addresses import (
    BLOCK_SIZE,
    BLOCKS_PER_PAGE,
    PAGE_SIZE,
    align_to_block,
    align_to_page,
    block_address,
    block_offset,
    cacheline_offset_in_page,
    page_number,
    page_offset,
)


class TestBlockArithmetic:
    def test_block_size_is_64_bytes(self):
        assert BLOCK_SIZE == 64

    def test_block_address_drops_offset(self):
        assert block_address(0x1000) == 0x1000 // 64
        assert block_address(0x1001) == block_address(0x103F)
        assert block_address(0x1040) == block_address(0x1000) + 1

    def test_block_offset_range(self):
        assert block_offset(0x1000) == 0
        assert block_offset(0x103F) == 63

    def test_align_to_block(self):
        assert align_to_block(0x1234) == 0x1200
        assert align_to_block(0x1200) == 0x1200


class TestPageArithmetic:
    def test_page_size_is_4kib(self):
        assert PAGE_SIZE == 4096

    def test_page_number_and_offset_recompose(self):
        address = 0xDEADBEEF
        assert page_number(address) * PAGE_SIZE + page_offset(address) == address

    def test_blocks_per_page(self):
        assert BLOCKS_PER_PAGE == 64

    def test_cacheline_offset_in_page_range(self):
        assert cacheline_offset_in_page(0) == 0
        assert cacheline_offset_in_page(PAGE_SIZE - 1) == 63
        assert cacheline_offset_in_page(PAGE_SIZE) == 0

    def test_align_to_page(self):
        assert align_to_page(0x12345) == 0x12000


@given(st.integers(min_value=0, max_value=2**48 - 1))
def test_block_decomposition_roundtrip(address):
    assert block_address(address) * BLOCK_SIZE + block_offset(address) == address


@given(st.integers(min_value=0, max_value=2**48 - 1))
def test_page_decomposition_roundtrip(address):
    assert page_number(address) * PAGE_SIZE + page_offset(address) == address


@given(st.integers(min_value=0, max_value=2**48 - 1))
def test_cacheline_offset_consistent_with_block_and_page(address):
    expected = (block_address(address)) % BLOCKS_PER_PAGE
    assert cacheline_offset_in_page(address) == expected
