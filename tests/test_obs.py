"""Tests for the telemetry layer: tracer, metrics, timeline, analysis, CLI.

The overriding invariant is that telemetry is a pure side channel: with it
off nothing is recorded and nothing allocates on the hot path; with it on
(including per-interval sim sampling) every simulated metric stays
bit-identical to a run without it.
"""

import dataclasses
import json
import logging

import pytest

from repro.cli import main
from repro.obs import analyze, metrics, profile, sample, timeline, tracer
from repro.obs.logs import get_logger, resolve_level
from repro.sim.engine import CampaignEngine, single_core_point
from repro.sim.result_cache import ResultCache

#: Tiny trace budget so each simulated point costs ~10ms.
BUDGET = 800


def tiny_point(workload="bfs.urand", scheme="baseline", budget=BUDGET):
    return single_core_point(
        workload, scheme, "ipcp", memory_accesses=budget, warmup_fraction=0.25
    )


@pytest.fixture(autouse=True)
def _isolated_telemetry(monkeypatch):
    """Keep tracer/metrics/sampling state from leaking across tests."""
    monkeypatch.delenv(tracer.TELEMETRY_ENV, raising=False)
    monkeypatch.delenv(profile.PROFILE_ENV, raising=False)
    monkeypatch.delenv(sample.SAMPLE_ENV, raising=False)
    tracer.disable()
    metrics.registry().reset()
    yield
    tracer.disable()
    metrics.registry().reset()


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_disabled_is_a_true_noop(self, tmp_path):
        assert not tracer.enabled()
        # The disabled span is one shared object -- no per-call allocation.
        assert tracer.span("simulate") is tracer.span("trace_load")
        with tracer.span("simulate", metric="point.simulate_s"):
            pass
        tracer.event("cache_hit", point="x")
        tracer.flush()
        assert metrics.registry().snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        assert list(tmp_path.iterdir()) == []

    def test_span_event_metrics_roundtrip(self, tmp_path):
        tracer.configure(tmp_path, proc="t1")
        with tracer.span("simulate", metric="point.simulate_s", point="p"):
            pass
        tracer.event("cache_hit", point="p")
        metrics.registry().counter("cache.hits")
        tracer.shutdown()
        records = tracer.load_run(tmp_path)
        kinds = [record["type"] for record in records]
        assert kinds.count("span") == 1
        assert kinds.count("event") == 1
        assert kinds.count("metrics") == 1
        span = next(r for r in records if r["type"] == "span")
        assert span["name"] == "simulate"
        assert span["attrs"] == {"point": "p"}
        assert span["dur"] >= 0.0
        snapshot = next(r for r in records if r["type"] == "metrics")["snapshot"]
        assert snapshot["counters"]["cache.hits"] == 1.0
        assert snapshot["histograms"]["point.simulate_s"]["count"] == 1

    def test_shutdown_emits_the_snapshot_once(self, tmp_path):
        tracer.configure(tmp_path, proc="t1")
        metrics.registry().counter("cache.hits")
        tracer.shutdown()
        tracer.shutdown()
        records = tracer.load_run(tmp_path)
        assert [r["type"] for r in records].count("metrics") == 1

    def test_merge_run_orders_across_sinks(self, tmp_path):
        (tmp_path / "events-b.jsonl").write_text(
            json.dumps({"type": "event", "name": "late", "ts": 2.0}) + "\n"
        )
        (tmp_path / "events-a.jsonl").write_text(
            json.dumps({"type": "event", "name": "early", "ts": 1.0}) + "\n"
        )
        merged = tracer.merge_run(tmp_path)
        names = [r["name"] for r in tracer.read_events(merged)]
        assert names == ["early", "late"]

    def test_read_events_skips_torn_lines(self, tmp_path):
        sink = tmp_path / "events-x.jsonl"
        sink.write_text(
            json.dumps({"type": "event", "name": "ok", "ts": 1.0})
            + "\n{\"type\": \"ev"
        )
        assert [r["name"] for r in tracer.read_events(sink)] == ["ok"]


# ----------------------------------------------------------------------
# Metrics registry and merge
# ----------------------------------------------------------------------
class TestMetrics:
    def test_worker_snapshot_merge_equals_single_process_totals(self):
        # One registry observing everything...
        single = metrics.MetricsRegistry()
        # ...versus the same observations split over per-worker registries.
        workers = [metrics.MetricsRegistry() for _ in range(3)]
        observations = [0.002, 0.04, 0.7, 12.0, 0.0004, 2.5]
        for index, value in enumerate(observations):
            single.counter("cache.hits")
            single.observe("point.simulate_s", value)
            workers[index % 3].counter("cache.hits")
            workers[index % 3].observe("point.simulate_s", value)
        single.gauge("queue.depth", 7)
        workers[-1].gauge("queue.depth", 7)
        merged = metrics.merge_snapshots([w.snapshot() for w in workers])
        expected = single.snapshot()
        # Histogram sums accumulate in a different order across workers;
        # everything else (counts, buckets, counters, gauges) is exact.
        merged_sum = merged["histograms"]["point.simulate_s"].pop("sum")
        expected_sum = expected["histograms"]["point.simulate_s"].pop("sum")
        assert merged_sum == pytest.approx(expected_sum)
        assert merged == expected

    def test_histogram_tracks_count_sum_min_max(self):
        hist = metrics.Histogram()
        for value in (0.5, 1.5, 3.0):
            hist.observe(value)
        payload = hist.to_dict()
        assert payload["count"] == 3
        assert payload["sum"] == pytest.approx(5.0)
        assert payload["min"] == 0.5
        assert payload["max"] == 3.0

    def test_merge_skips_malformed_snapshots(self):
        registry = metrics.MetricsRegistry()
        registry.counter("cache.hits", 2)
        merged = metrics.merge_snapshots(
            [registry.snapshot(), {"bogus": True}, None]
        )
        assert merged["counters"]["cache.hits"] == 2.0

    def test_prometheus_rendering(self):
        registry = metrics.MetricsRegistry()
        registry.counter("cache.hits", 3)
        registry.observe("point.simulate_s", 0.002)
        text = metrics.to_prometheus(registry.snapshot())
        assert "repro_cache_hits_total 3" in text
        assert 'repro_point_simulate_s_bucket{le="+Inf"} 1' in text
        assert "repro_point_simulate_s_count 1" in text


# ----------------------------------------------------------------------
# Engine integration: spans recorded, results untouched
# ----------------------------------------------------------------------
class TestEngineTelemetry:
    def test_serial_run_records_spans_and_counters(self, tmp_path):
        tracer.configure(tmp_path / "tele", proc="t1")
        engine = CampaignEngine(result_cache=ResultCache(tmp_path / "cache"))
        engine.run([tiny_point()], jobs=1)
        tracer.shutdown()
        records = tracer.load_run(tmp_path / "tele")
        spans = {r["name"] for r in records if r["type"] == "span"}
        assert {"trace_load", "simulate", "cache_put"} <= spans
        events = {r["name"] for r in records if r["type"] == "event"}
        assert "cache_miss" in events
        snapshot = metrics.registry().snapshot()
        assert snapshot["counters"]["cache.misses"] == 1.0
        assert snapshot["counters"]["cache.puts"] == 1.0
        assert snapshot["histograms"]["point.simulate_s"]["count"] == 1

    def test_cache_hit_recorded_on_warm_run(self, tmp_path):
        engine = CampaignEngine(result_cache=ResultCache(tmp_path / "cache"))
        engine.run([tiny_point()], jobs=1)
        tracer.configure(tmp_path / "tele", proc="t1")
        warm = CampaignEngine(result_cache=ResultCache(tmp_path / "cache"))
        warm.run([tiny_point()], jobs=1)
        tracer.flush()
        assert "cache_hit" in {
            r["name"]
            for r in tracer.load_run(tmp_path / "tele")
            if r["type"] == "event"
        }
        assert metrics.registry().snapshot()["counters"]["cache.hits"] == 1.0

    def test_results_bit_identical_with_telemetry(self, tmp_path):
        plain = CampaignEngine(result_cache=None).run([tiny_point()], jobs=1)
        tracer.configure(tmp_path / "tele", proc="t1")
        traced = CampaignEngine(result_cache=None).run([tiny_point()], jobs=1)
        key = tiny_point().key()
        assert dataclasses.asdict(plain[key]) == dataclasses.asdict(
            traced[key]
        )


# ----------------------------------------------------------------------
# Sim-interval sampling: snapshots out, metrics untouched
# ----------------------------------------------------------------------
class TestSimSampling:
    @pytest.mark.parametrize("core", ["scalar", "batch"])
    def test_sampling_is_bit_identical_and_emits_snapshots(
        self, tmp_path, monkeypatch, core
    ):
        from repro.common.config import cascade_lake_single_core
        from repro.sim.scenarios import build_scenario
        from repro.sim.single_core import run_single_core
        from repro.workloads.spec_like import spec_like_trace

        config = dataclasses.replace(
            cascade_lake_single_core(), sim_core=core
        )
        trace = spec_like_trace("mcf_like", num_memory_accesses=2000)
        plain = run_single_core(
            trace, build_scenario("tlp", l1d_prefetcher="ipcp"), config=config
        )

        monkeypatch.setenv(sample.SAMPLE_ENV, "500")
        tracer.configure(tmp_path, proc="t1")
        sampled = run_single_core(
            trace, build_scenario("tlp", l1d_prefetcher="ipcp"), config=config
        )
        tracer.flush()

        assert dataclasses.asdict(sampled) == dataclasses.asdict(plain)
        snapshots = [
            r for r in tracer.load_run(tmp_path)
            if r["type"] == "event" and r["name"] == "sim_sample"
        ]
        assert len(snapshots) >= 2
        for record in snapshots:
            attrs = record["attrs"]
            assert attrs["core"] == core
            assert attrs["ipc"] > 0
            assert "l1d_mpki" in attrs and "llc_mpki" in attrs
            assert "predictor_accuracy" in attrs  # TLP trains perceptrons
        accesses = [r["attrs"]["accesses"] for r in snapshots]
        assert accesses == sorted(accesses)

    def test_sampling_requires_telemetry(self, monkeypatch):
        monkeypatch.setenv(sample.SAMPLE_ENV, "500")
        assert sample.sample_interval() is None  # tracer off -> no sampling


# ----------------------------------------------------------------------
# Chrome trace export
# ----------------------------------------------------------------------
def _synthetic_run():
    """A two-process run: spans, a lease, an idle gap, samples, metrics."""
    registry = metrics.MetricsRegistry()
    registry.counter("cache.hits", 1)
    registry.counter("cache.misses", 3)
    registry.counter("cache.puts", 3)
    records = [
        {"type": "span", "name": "trace_load", "ts": 10.0, "dur": 0.5,
         "pid": 1, "proc": "w1", "attrs": {"workload": "bfs.urand"}},
        {"type": "span", "name": "simulate", "ts": 10.5, "dur": 2.0,
         "pid": 1, "proc": "w1", "attrs": {"point": "a"}},
        {"type": "span", "name": "simulate", "ts": 10.2, "dur": 1.0,
         "pid": 2, "proc": "w2", "attrs": {"point": "b"}},
        {"type": "span", "name": "cache_put", "ts": 12.5, "dur": 0.1,
         "pid": 1, "proc": "w1", "attrs": {"point": "a"}},
        {"type": "event", "name": "cache_hit", "ts": 10.1,
         "pid": 2, "proc": "w2", "attrs": {"point": "c"}},
        {"type": "event", "name": "lease_acquire", "ts": 10.05,
         "pid": 1, "proc": "w1", "attrs": {"key": "k", "owner": "w1"}},
        {"type": "event", "name": "worker_idle", "ts": 11.4,
         "pid": 2, "proc": "w2", "attrs": {"owner": "w2", "idle_s": 0.2}},
        {"type": "event", "name": "sim_sample", "ts": 11.0,
         "pid": 1, "proc": "w1",
         "attrs": {"ipc": 0.8, "l1d_mpki": 50.0, "l2c_mpki": 40.0,
                   "llc_mpki": 30.0, "accesses": 1000}},
        {"type": "metrics", "ts": 12.9, "pid": 1, "proc": "w1",
         "snapshot": registry.snapshot()},
    ]
    return sorted(records, key=lambda r: r["ts"])


class TestChromeExport:
    def test_conforms_to_trace_event_schema(self):
        trace = timeline.chrome_trace(_synthetic_run())
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        events = trace["traceEvents"]
        phases = {e["ph"] for e in events}
        assert {"M", "X", "i", "C"} <= phases
        for e in events:
            assert "name" in e and "pid" in e and "ph" in e
            if e["ph"] == "M":
                continue  # metadata events carry no timestamp
            assert isinstance(e["ts"], int) and e["ts"] >= 0
            if e["ph"] == "X":
                assert e["dur"] >= 1  # microseconds, never zero-width
        # One process_name metadata record per recording process.
        named = [e for e in events if e["ph"] == "M"]
        assert {e["args"]["name"] for e in named} == {"w1", "w2"}
        # The sim_sample event became counter tracks.
        counters = {e["name"] for e in events if e["ph"] == "C"}
        assert "ipc" in counters and "mpki" in counters

    def test_export_writes_loadable_json(self, tmp_path):
        run = tmp_path / "run.jsonl"
        with run.open("w") as fh:
            for record in _synthetic_run():
                fh.write(json.dumps(record) + "\n")
        out = timeline.export_chrome(run, tmp_path / "trace.json")
        trace = json.loads(out.read_text())
        assert trace["traceEvents"]


# ----------------------------------------------------------------------
# Analysis summaries and the obs CLI
# ----------------------------------------------------------------------
class TestAnalyze:
    def test_summary_fields(self):
        summary = analyze.summarize(_synthetic_run())
        assert summary["wall_s"] == pytest.approx(2.9)
        assert set(summary["processes"]) == {"w1", "w2"}
        assert summary["processes"]["w1"]["busy_s"] == pytest.approx(2.6)
        assert summary["stragglers"]["points"] == 2
        assert summary["stragglers"]["max_s"] == pytest.approx(2.0)
        assert summary["cache"]["hits"] == 1
        assert summary["cache"]["misses"] == 3
        assert summary["cache"]["hit_rate"] == pytest.approx(0.25)
        assert summary["leases"]["acquired"] == 1
        assert summary["idle"]["total_s"] == pytest.approx(0.2)
        assert summary["samples"] == 1

    def test_percentile_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert analyze.percentile(values, 50) == pytest.approx(2.5)
        assert analyze.percentile(values, 100) == pytest.approx(4.0)

    def test_empty_run(self):
        summary = analyze.summarize([])
        assert summary["wall_s"] == 0.0
        assert summary["processes"] == {}


class TestObsCli:
    @pytest.fixture()
    def run_dir(self, tmp_path):
        sink = tmp_path / "events-w.jsonl"
        with sink.open("w") as fh:
            for record in _synthetic_run():
                fh.write(json.dumps(record) + "\n")
        return tmp_path

    def test_report_prints_summary(self, run_dir, capsys):
        assert main(["obs", "report", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "overall utilization" in out
        assert "p50" in out and "p90" in out and "p99" in out
        assert "hit rate" in out
        assert "leases" in out

    def test_report_json(self, run_dir, capsys):
        assert main(["obs", "report", str(run_dir), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache"]["hit_rate"] == pytest.approx(0.25)
        assert payload["metrics"]["counters"]["cache.puts"] == 3.0

    def test_export_chrome(self, run_dir, capsys, tmp_path):
        out_file = tmp_path / "out" / "trace.json"
        out_file.parent.mkdir()
        assert main(["obs", "export-chrome", str(run_dir),
                     "-o", str(out_file)]) == 0
        assert json.loads(out_file.read_text())["traceEvents"]

    def test_prom(self, run_dir, capsys):
        assert main(["obs", "prom", str(run_dir)]) == 0
        assert "repro_cache_hits_total 1" in capsys.readouterr().out

    def test_report_on_missing_run(self, tmp_path, capsys):
        assert main(["obs", "report", str(tmp_path / "nope")]) == 2


# ----------------------------------------------------------------------
# Logging satellite
# ----------------------------------------------------------------------
class TestLogging:
    def test_get_logger_namespaces_under_repro(self):
        assert get_logger("cache").name == "repro.cache"
        assert get_logger("repro.traces").name == "repro.traces"

    def test_resolve_level_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "debug")
        assert resolve_level() == logging.DEBUG
        assert resolve_level("error") == logging.ERROR

    def test_cli_log_level_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["--log-level", "debug", "figure", "fig01"]
        )
        assert args.log_level == "debug"


# ----------------------------------------------------------------------
# CLI flags
# ----------------------------------------------------------------------
class TestTelemetryFlags:
    def test_telemetry_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["figure", "fig01", "--telemetry", "tele",
             "--profile", "cprofile", "--sample-interval", "1000"]
        )
        assert args.telemetry == "tele"
        assert args.profile == "cprofile"
        assert args.sample_interval == 1000

    def test_bare_telemetry_means_default_dir(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["figure", "fig01", "--telemetry"])
        assert args.telemetry == ""

    def test_obs_subcommands_parse(self):
        from repro.cli import build_parser

        for argv in (["obs", "report", "d"],
                     ["obs", "report", "d", "--json"],
                     ["obs", "export-chrome", "d", "-o", "t.json"],
                     ["obs", "prom", "d"],
                     ["obs", "hotspots", "d", "--top", "5"]):
            args = build_parser().parse_args(argv)
            assert args.command == "obs"
