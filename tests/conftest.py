"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.sim.result_cache import CACHE_DIR_ENV
from repro.traces.store import TRACE_DIR_ENV


@pytest.fixture(scope="session", autouse=True)
def _isolated_result_cache(tmp_path_factory):
    """Point the persistent result cache and trace store at per-session
    temp directories.

    Keeps the test suite hermetic: runs never read results or traces
    persisted by a previous run (which would mask simulator/generator
    changes) and never leave ``.repro_cache`` / ``.repro_traces``
    directories in the repository.
    """
    import os

    previous = {}
    for env_var, label in ((CACHE_DIR_ENV, "repro_result_cache"),
                           (TRACE_DIR_ENV, "repro_trace_store")):
        previous[env_var] = os.environ.get(env_var)
        os.environ[env_var] = str(tmp_path_factory.mktemp(label))
    yield
    for env_var, value in previous.items():
        if value is None:
            os.environ.pop(env_var, None)
        else:
            os.environ[env_var] = value

from repro.common.config import cascade_lake_single_core
from repro.traces.synthetic import (
    SyntheticTraceConfig,
    pointer_chase_trace,
    random_access_trace,
    streaming_trace,
)
from repro.workloads.gap import gap_trace


@pytest.fixture(scope="session")
def system_config():
    """The Table III single-core configuration."""
    return cascade_lake_single_core()


@pytest.fixture(scope="session")
def small_random_trace():
    """A small random-access trace with a working set larger than the LLC."""
    config = SyntheticTraceConfig(
        num_memory_accesses=3_000,
        working_set_bytes=4 * 1024 * 1024,
        compute_per_access=2,
        seed=7,
    )
    return random_access_trace(config, name="test_random")


@pytest.fixture(scope="session")
def small_stream_trace():
    """A small streaming trace (prefetch friendly)."""
    config = SyntheticTraceConfig(
        num_memory_accesses=3_000,
        working_set_bytes=2 * 1024 * 1024,
        compute_per_access=2,
        seed=9,
    )
    return streaming_trace(config, name="test_stream")


@pytest.fixture(scope="session")
def small_chase_trace():
    """A small pointer-chase trace (off-chip heavy)."""
    config = SyntheticTraceConfig(
        num_memory_accesses=3_000,
        working_set_bytes=8 * 1024 * 1024,
        compute_per_access=3,
        seed=11,
    )
    return pointer_chase_trace(config, name="test_chase")


@pytest.fixture(scope="session")
def small_gap_trace():
    """A small BFS trace over a tiny uniform random graph."""
    return gap_trace(
        "bfs", graph="urand", scale="tiny", max_memory_accesses=3_000, seed=3
    )
