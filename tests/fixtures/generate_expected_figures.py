"""Regenerate ``expected_figures_quick.json``, the figure parity fixture.

The fixture pins the exact output of every registered figure harness at the
quick experiment configuration.  It was first generated from the
pre-registry harnesses (the hand-rolled ``campaign.single_core(...)``
loops), so the registry parity suite in ``tests/test_experiment_specs.py``
proves the spec-driven refactor is bit-identical to the original code.

Only regenerate after an *intentional* simulator behaviour change (the same
kind of change that bumps ``CACHE_SCHEMA_VERSION``)::

    PYTHONPATH=src python tests/fixtures/generate_expected_figures.py
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.experiments import (
    fig01_mpki,
    fig02_hermes_dram_sc,
    fig04_offchip_breakdown,
    fig05_06_prefetch_location,
    fig10_12_singlecore,
    fig13_14_multicore,
    fig15_ablation,
    fig16_bandwidth,
    fig17_storage_budget,
    table02_storage,
)
from repro.experiments.common import CampaignCache, quick_experiment_config

FIXTURE_PATH = Path(__file__).resolve().parent / "expected_figures_quick.json"

#: The bandwidth points pinned for Figure 16 (two points keep the fixture
#: generation fast; the sweep machinery is identical at every point).
FIG16_BANDWIDTHS = (1.6, 6.4)


def json_ready(result) -> dict:
    """Dataclass result -> the canonical JSON payload stored in the fixture.

    A JSON round trip normalises non-string dict keys (Figure 16 keys rows
    by float bandwidth) exactly the way the parity tests re-normalise the
    spec-driven outputs, and float values survive it bit-exactly.
    """
    return json.loads(json.dumps(dataclasses.asdict(result), sort_keys=True))


def generate() -> dict:
    """Run every figure at the quick configuration and collect the outputs."""
    cache = CampaignCache(quick_experiment_config(), use_result_cache=False)
    runs = {
        "fig01": lambda: fig01_mpki.run(cache=cache),
        "fig02": lambda: fig02_hermes_dram_sc.run(cache=cache),
        "fig04": lambda: fig04_offchip_breakdown.run(cache=cache),
        "fig05": lambda: fig05_06_prefetch_location.run(cache=cache),
        "fig10": lambda: fig10_12_singlecore.run(cache=cache),
        "fig13": lambda: fig13_14_multicore.run(cache=cache),
        "fig15": lambda: fig15_ablation.run(cache=cache),
        "fig16": lambda: fig16_bandwidth.run(
            cache=cache, bandwidths=FIG16_BANDWIDTHS
        ),
        "fig17": lambda: fig17_storage_budget.run(cache=cache),
        "table02": lambda: table02_storage.run(),
    }
    return {name: json_ready(run()) for name, run in runs.items()}


def main() -> int:
    payload = generate()
    FIXTURE_PATH.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(f"wrote {FIXTURE_PATH} ({len(payload)} figures)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
