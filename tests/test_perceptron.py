"""Tests for the hashed perceptron machinery and feature extraction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.predictors.features import (
    FeatureContext,
    FeatureHistory,
    legacy_hermes_features,
    leveling_feature,
    slp_features,
)
from repro.predictors.perceptron import HashedPerceptron


def make_context(pc=0x400, address=0x1000, first=False, history=(1, 2, 3, 4), flp=False):
    return FeatureContext(
        pc=pc,
        address=address,
        first_access=first,
        last_load_pcs=history,
        flp_prediction=flp,
    )


class TestFeatureSpecs:
    def test_legacy_feature_count(self):
        assert len(legacy_hermes_features()) == 5

    def test_slp_has_leveling_feature(self):
        features = slp_features()
        assert len(features) == 6
        assert features[-1].name == "flp_prediction_plus_offset"

    def test_storage_bits(self):
        feature = leveling_feature()
        assert feature.storage_bits() == feature.table_entries * feature.weight_bits

    def test_leveling_feature_depends_on_flp_bit(self):
        feature = leveling_feature()
        positive = feature.extractor(make_context(flp=True))
        negative = feature.extractor(make_context(flp=False))
        assert positive != negative

    def test_table_entry_override(self):
        features = legacy_hermes_features(table_entries=256)
        assert all(spec.table_entries == 256 for spec in features)


class TestFeatureHistory:
    def test_first_access_true_for_unseen_page(self):
        history = FeatureHistory()
        assert history.is_first_access(0x5000)

    def test_first_access_false_after_observation(self):
        history = FeatureHistory()
        history.observe(0x400, 0x5000)
        assert not history.is_first_access(0x5010)

    def test_page_buffer_capacity_evicts_oldest(self):
        history = FeatureHistory(page_buffer_entries=2)
        history.observe(0x400, 0x1000)
        history.observe(0x400, 0x2000)
        history.observe(0x400, 0x3000)
        assert history.is_first_access(0x1000)
        assert not history.is_first_access(0x3000)

    def test_pc_history_is_bounded(self):
        history = FeatureHistory(pc_history_length=4)
        for pc in range(10):
            history.observe(pc, 0x1000)
        context = history.context(99, 0x1000)
        assert len(context.last_load_pcs) == 4
        assert context.last_load_pcs == (6, 7, 8, 9)

    def test_reset(self):
        history = FeatureHistory()
        history.observe(1, 0x1000)
        history.reset()
        assert history.is_first_access(0x1000)
        assert history.context(1, 0x1000).last_load_pcs == ()

    def test_pc_tuple_cached_between_observations(self):
        history = FeatureHistory()
        history.observe(1, 0x1000)
        history.observe(2, 0x2000)
        first = history.context(10, 0x3000).last_load_pcs
        second = history.context(11, 0x4000).last_load_pcs
        # No observe() in between: the tuple is reused, not rebuilt.
        assert first is second

    def test_pc_tuple_invalidated_on_observe(self):
        history = FeatureHistory()
        history.observe(1, 0x1000)
        before = history.context(10, 0x3000).last_load_pcs
        history.observe(2, 0x2000)
        after = history.context(10, 0x3000).last_load_pcs
        assert after == (1, 2)
        assert after != before

    def test_context_pcs_hash_matches_direct_hash(self):
        from repro.common.hashing import hash_combine

        history = FeatureHistory()
        for pc in (3, 5, 7, 11):
            history.observe(pc, 0x1000)
        context = history.context(99, 0x2000)
        assert context.last_pcs_hash == hash_combine(3, 5, 7, 11)

    def test_standalone_context_computes_hash_lazily(self):
        from repro.common.hashing import hash_combine

        context = FeatureContext(pc=1, address=2, first_access=False,
                                 last_load_pcs=(4, 5))
        assert context.last_pcs_hash == hash_combine(4, 5)
        assert FeatureContext(pc=1, address=2, first_access=False,
                              last_load_pcs=()).last_pcs_hash == 0


class TestHashedPerceptron:
    def test_initial_prediction_is_zero(self):
        perceptron = HashedPerceptron(legacy_hermes_features())
        confidence, indices = perceptron.predict(make_context())
        assert confidence == 0
        assert len(indices) == 5

    def test_positive_training_raises_confidence(self):
        perceptron = HashedPerceptron(legacy_hermes_features())
        context = make_context()
        confidence, indices = perceptron.predict(context)
        for _ in range(10):
            perceptron.train(indices, True, confidence)
        new_confidence, _ = perceptron.predict(context)
        assert new_confidence > 0

    def test_negative_training_lowers_confidence(self):
        perceptron = HashedPerceptron(legacy_hermes_features())
        context = make_context()
        confidence, indices = perceptron.predict(context)
        for _ in range(10):
            perceptron.train(indices, False, confidence)
        new_confidence, _ = perceptron.predict(context)
        assert new_confidence < 0

    def test_training_stops_when_confident_and_correct(self):
        perceptron = HashedPerceptron(legacy_hermes_features(), training_threshold=2)
        context = make_context()
        _, indices = perceptron.predict(context)
        perceptron.train(indices, True, 0)
        perceptron.train(indices, True, 100)  # confident and correct: no update
        assert perceptron.stats.weight_updates == 1

    def test_empty_feature_list_rejected(self):
        with pytest.raises(ValueError):
            HashedPerceptron([])

    def test_reset_zeroes_weights(self):
        perceptron = HashedPerceptron(legacy_hermes_features())
        context = make_context()
        confidence, indices = perceptron.predict(context)
        perceptron.train(indices, True, confidence)
        perceptron.reset()
        assert perceptron.predict(context)[0] == 0

    def test_storage_accounting(self):
        perceptron = HashedPerceptron(legacy_hermes_features())
        expected_bits = sum(spec.storage_bits() for spec in perceptron.features)
        assert perceptron.storage_bits() == expected_bits
        assert perceptron.storage_kib() == pytest.approx(expected_bits / 8 / 1024)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2**20),  # pc
            st.integers(min_value=0, max_value=2**30),  # address
            st.booleans(),  # outcome
        ),
        min_size=1,
        max_size=150,
    )
)
def test_weights_never_exceed_5_bit_saturation(events):
    perceptron = HashedPerceptron(legacy_hermes_features(), training_threshold=1000)
    history = FeatureHistory()
    for pc, address, outcome in events:
        context = history.context(pc, address)
        confidence, indices = perceptron.predict(context)
        history.observe(pc, address)
        perceptron.train(indices, outcome, confidence)
    for feature_index, spec in enumerate(perceptron.features):
        for entry in range(spec.table_entries):
            weight = perceptron.weight(feature_index, entry)
            assert -16 <= weight <= 15


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=2**40), st.integers(min_value=0, max_value=2**40))
def test_prediction_confidence_bounded_by_feature_count(pc, address):
    perceptron = HashedPerceptron(slp_features())
    context = make_context(pc=pc, address=address)
    confidence, _ = perceptron.predict(context)
    assert -16 * 6 <= confidence <= 15 * 6
