"""Tests for the replacement policies."""

import pytest
from hypothesis import given, strategies as st

from repro.memory.replacement import LRUPolicy, SRRIPPolicy, make_policy


class TestLRU:
    def test_victim_is_least_recently_used(self):
        lru = LRUPolicy(4)
        for way in range(4):
            lru.on_fill(way)
        lru.on_hit(0)
        lru.on_hit(1)
        lru.on_hit(2)
        assert lru.victim() == 3

    def test_fill_makes_way_most_recent(self):
        lru = LRUPolicy(2)
        lru.on_fill(0)
        lru.on_fill(1)
        assert lru.victim() == 0

    def test_hit_refreshes_recency(self):
        lru = LRUPolicy(3)
        lru.on_fill(0)
        lru.on_fill(1)
        lru.on_fill(2)
        lru.on_hit(0)
        assert lru.victim() == 1

    def test_invalid_associativity(self):
        with pytest.raises(ValueError):
            LRUPolicy(0)


class TestSRRIP:
    def test_victim_exists_even_when_all_recent(self):
        srrip = SRRIPPolicy(4)
        for way in range(4):
            srrip.on_fill(way)
            srrip.on_hit(way)
        assert 0 <= srrip.victim() < 4

    def test_hit_protects_block(self):
        srrip = SRRIPPolicy(2)
        srrip.on_fill(0)
        srrip.on_fill(1)
        srrip.on_hit(0)
        assert srrip.victim() == 1


class TestFactory:
    def test_make_lru(self):
        assert isinstance(make_policy("lru", 4), LRUPolicy)

    def test_make_srrip(self):
        assert isinstance(make_policy("SRRIP", 4), SRRIPPolicy)

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            make_policy("plru", 4)


@given(
    st.integers(min_value=1, max_value=8),
    st.lists(st.integers(min_value=0, max_value=7), max_size=100),
)
def test_lru_victim_always_valid_way(associativity, hits):
    lru = LRUPolicy(associativity)
    for way in range(associativity):
        lru.on_fill(way)
    for hit in hits:
        lru.on_hit(hit % associativity)
    assert 0 <= lru.victim() < associativity


@given(st.integers(min_value=2, max_value=8), st.data())
def test_lru_recently_touched_way_is_never_victim(associativity, data):
    lru = LRUPolicy(associativity)
    for way in range(associativity):
        lru.on_fill(way)
    touched = data.draw(st.integers(min_value=0, max_value=associativity - 1))
    lru.on_hit(touched)
    assert lru.victim() != touched
