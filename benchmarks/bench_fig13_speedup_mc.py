"""Figure 13: multi-core weighted speedups of the four schemes."""

from conftest import run_once

from repro.experiments import fig13_14_multicore


def test_fig13_multicore_speedup(benchmark, campaign):
    result = run_once(
        benchmark, lambda: fig13_14_multicore.run(cache=campaign, l1d_prefetchers=("ipcp",))
    )
    print()
    print("Figure 13: multi-core normalised weighted speedup (geomean %)")
    print(fig13_14_multicore.format_table(result))
    speedups = result.geomean_speedup["ipcp"]
    # Paper shape: TLP outperforms Hermes (the strongest off-chip baseline).
    assert speedups["tlp"] >= speedups["hermes"] - 1.0
