"""Figure 15: performance contribution of each TLP component."""

from conftest import run_once

from repro.experiments import fig15_ablation


def test_fig15_component_ablation(benchmark, campaign):
    result = run_once(benchmark, lambda: fig15_ablation.run(cache=campaign))
    print()
    print("Figure 15: ablation of TLP components (geomean weighted speedup %)")
    print(fig15_ablation.format_table(result))
    geomean = result.geomean
    # Paper shape: the full design is at least as good as the partial designs
    # it is built from (allowing small noise at this simulation scale).
    assert geomean["tlp"] >= geomean["flp"] - 2.0
    assert geomean["tlp"] >= geomean["tsp"] - 2.0
