"""Figure 6: where accurate L1D prefetches are served (IPCP and Berti)."""

from conftest import run_once

from repro.experiments import fig05_06_prefetch_location


def test_fig06_accurate_prefetch_location(benchmark, campaign):
    result = run_once(benchmark, lambda: fig05_06_prefetch_location.run(cache=campaign))
    print()
    print("Figure 6: accurate L1D prefetches by serving level (PPKI)")
    print(fig05_06_prefetch_location.format_table(result))
    for prefetcher, averages in result.accurate_average.items():
        assert all(value >= 0.0 for value in averages.values())
