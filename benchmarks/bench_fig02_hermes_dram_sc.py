"""Figure 2: DRAM-transaction increase due to Hermes (single-core)."""

from conftest import run_once

from repro.experiments import fig02_hermes_dram_sc


def test_fig02_hermes_dram_increase(benchmark, campaign):
    result = run_once(benchmark, lambda: fig02_hermes_dram_sc.run(cache=campaign))
    print()
    print("Figure 2: DRAM transaction increase of Hermes (single-core, IPCP)")
    print(fig02_hermes_dram_sc.format_table(result))
    # Paper shape: Hermes increases DRAM transactions on average.
    assert result.overall > 0.0
