"""Figure 3: DRAM-transaction increase due to Hermes (4-core mixes)."""

from conftest import run_once

from repro.experiments import fig13_14_multicore


def test_fig03_hermes_dram_increase_multicore(benchmark, campaign):
    result = run_once(
        benchmark,
        lambda: fig13_14_multicore.run(
            cache=campaign, schemes=("hermes",), l1d_prefetchers=("ipcp",)
        ),
    )
    print()
    print("Figure 3: DRAM transaction increase of Hermes (4-core, IPCP)")
    print(fig13_14_multicore.format_table(result))
    # Paper shape: Hermes increases multi-core DRAM transactions on average.
    assert result.average_dram_change["ipcp"]["hermes"] > -1.0
