"""Table II: storage overhead of TLP (~7KB per core)."""

from conftest import run_once

from repro.experiments import table02_storage


def test_table02_storage_breakdown(benchmark):
    result = run_once(benchmark, table02_storage.run)
    print()
    print("Table II: TLP storage overhead")
    print(table02_storage.format_table(result))
    # Paper claim: ~7KB per core, with FLP and SLP each close to 3.2-3.3KB.
    assert 5.0 < result.total < 9.0
    assert 2.5 < result.flp_total < 4.5
    assert 2.5 < result.slp_total < 4.7
    assert result.load_queue_metadata < 1.0
