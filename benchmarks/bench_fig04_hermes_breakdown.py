"""Figure 4: block location upon a Hermes off-chip prediction."""

from conftest import run_once

from repro.experiments import fig04_offchip_breakdown


def test_fig04_offchip_prediction_breakdown(benchmark, campaign):
    result = run_once(benchmark, lambda: fig04_offchip_breakdown.run(cache=campaign))
    print()
    print("Figure 4: block location upon a Hermes off-chip prediction")
    print(fig04_offchip_breakdown.format_table(result))
    # Paper shape: most positive predictions are correct (block in DRAM), but
    # a sizeable fraction is wrong, with part of it resident in the L1D.
    assert result.overall["DRAM"] > 40.0
    wrong = result.overall["L1D"] + result.overall["L2C"] + result.overall["LLC"]
    assert wrong > 5.0
