"""Figure 11: single-core DRAM-transaction increase of the four schemes."""

from conftest import run_once

from repro.experiments import fig10_12_singlecore


def test_fig11_single_core_dram_transactions(benchmark, campaign):
    result = run_once(benchmark, lambda: fig10_12_singlecore.run(cache=campaign))
    print()
    print("Figure 11: single-core DRAM transaction change vs baseline (avg %)")
    print(fig10_12_singlecore.format_table(result))
    for prefetcher in campaign.config.l1d_prefetchers:
        changes = result.average_dram_change[prefetcher]
        # Paper shape: TLP reduces DRAM transactions, the other schemes
        # increase them (TLP is at least clearly the lowest).
        assert changes["tlp"] < changes["hermes"]
        assert changes["tlp"] < changes["hermes_ppf"]
        assert changes["tlp"] < 5.0
