"""Figure 14: multi-core DRAM-transaction increase of the four schemes."""

from conftest import run_once

from repro.experiments import fig13_14_multicore


def test_fig14_multicore_dram_transactions(benchmark, campaign):
    result = run_once(
        benchmark, lambda: fig13_14_multicore.run(cache=campaign, l1d_prefetchers=("ipcp",))
    )
    print()
    print("Figure 14: multi-core DRAM transaction change vs baseline (avg %)")
    print(fig13_14_multicore.format_table(result))
    changes = result.average_dram_change["ipcp"]
    # Paper shape: TLP triggers the fewest DRAM transactions of all schemes.
    assert changes["tlp"] <= changes["hermes"]
    assert changes["tlp"] <= changes["hermes_ppf"]
