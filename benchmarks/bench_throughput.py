"""Simulator throughput benchmark: simulated memory-accesses per second.

Measures the hot-path speed of the simulator itself (not the modelled
system) on the quick configuration: one cache-hostile GAP workload and one
SPEC-like workload, each under the baseline scenario (prefetchers only) and
under TLP (the heaviest scheme: FLP + SLP perceptrons on every access).

Three metrics per scenario:

* ``accesses_per_sec`` -- simulation throughput over a prebuilt trace;
* ``construction`` (per workload) -- trace-build throughput in records/sec.
  ``seconds``/``records_per_sec`` are steady-state campaign behaviour
  (input graphs memoized per process, i.e. every point after the first
  sharing a graph); ``first_build_seconds`` is the true cold first build,
  measured with a cleared graph memo, so the one-time per-process graph
  generation cost stays visible;
* ``cold_point_seconds`` -- campaign-point wall time on a cold *result*
  cache (steady-state trace build + simulate; the per-process graph build
  is amortized across the campaign and reported via
  ``first_build_seconds``);
* ``core_batch`` (per scenario) -- the same simulation through the
  chunk-vectorized batch core (``--core batch``), which is bit-identical
  to the scalar path; ``speedup_vs_scalar`` is the per-scenario ratio and
  ``batch_speedup_vs_scalar`` its geomean.  ``--check`` additionally
  fails when that geomean drops below 1.0 (the batch core must never be
  slower than the scalar reference it replaces) -- a same-machine,
  same-run comparison, so no calibration scaling applies;
* ``store_load`` (per workload) -- trace-store load throughput in
  records/sec: memory-mapping a stored trace back (header parse + mmap +
  touching every column element), i.e. what a campaign worker pays instead
  of ``construction`` when the persistent trace store is warm;
* ``figure_campaign`` -- registry-driven figure execution (PR 4): the
  Figure 10/11/12 sweep spec compiled to one point batch and pushed
  through ``CampaignEngine.run`` serially and with ``--jobs 2``, on a cold
  in-process cache with the persistent caches off.  Serial points/sec is
  the figure-layer regression signal; the parallel ratio shows what the
  one-fan-out-per-figure refactor buys (``repro figure all --jobs N``).

Usage::

    PYTHONPATH=src python benchmarks/bench_throughput.py
    PYTHONPATH=src python benchmarks/bench_throughput.py --check

Writes ``BENCH_throughput.json`` with the per-scenario numbers plus
geometric means, and compares against the committed reference numbers in
``benchmarks/throughput_baseline.json`` (recorded on the CI reference
machine; the ``seed`` block preserves the pre-optimization numbers the
hot-path and columnar-trace speedups are measured against).  With
``--check`` the script exits non-zero when the simulation geometric mean
regresses more than ``--tolerance`` (default 30%) below the committed
baseline -- the CI throughput smoke.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import math
import time
from pathlib import Path

from repro.common.config import cascade_lake_single_core
from repro.sim.scenarios import build_scenario
from repro.sim.single_core import run_single_core
from repro.workloads.gap import gap_trace
from repro.workloads.spec_like import spec_like_trace

#: (workload, scheme, l1d_prefetcher) scenarios measured by the benchmark.
#: IPCP rows keep their historical ``workload/scheme`` names so the seed
#: comparisons stay meaningful; the berti rows pin the second L1D
#: prefetcher kernel and the ppf rows the aggressive-SPP + PPF L2 path.
SCENARIOS = (
    ("bfs.urand", "baseline", "ipcp"),
    ("bfs.urand", "tlp", "ipcp"),
    ("bfs.urand", "tlp", "berti"),
    ("bfs.urand", "ppf", "ipcp"),
    ("spec.mcf_like", "baseline", "ipcp"),
    ("spec.mcf_like", "tlp", "ipcp"),
    ("spec.mcf_like", "tlp", "berti"),
    ("spec.mcf_like", "ppf", "ipcp"),
)

BASELINE_PATH = Path(__file__).resolve().parent / "throughput_baseline.json"
DEFAULT_OUTPUT = "BENCH_throughput.json"


def calibration_score(iterations: int = 400_000) -> float:
    """Machine-speed score: hash-loop iterations per second.

    The committed baseline records the score of the machine it was measured
    on; ``--check`` scales the baseline by the ratio of the current score to
    the recorded one, so a slower CI runner is held to a proportionally
    lower absolute floor instead of failing on hardware variance.  The loop
    mirrors the simulator's real hot path (integer hashing).
    """
    from repro.common.hashing import jenkins32

    best = math.inf
    for _ in range(3):
        start = time.perf_counter()
        value = 0
        for i in range(iterations):
            value ^= jenkins32(i)
        best = min(best, time.perf_counter() - start)
    return iterations / best


def _build_trace(workload: str, accesses: int):
    if workload.startswith("spec."):
        return spec_like_trace(workload[len("spec."):], num_memory_accesses=accesses)
    kernel, _, graph = workload.partition(".")
    return gap_trace(kernel, graph=graph, scale="medium", max_memory_accesses=accesses)


def _geomean(values) -> float:
    values = list(values)
    return math.exp(sum(math.log(value) for value in values) / len(values))


def _measure_store_load(trace, repeats: int) -> dict:
    """Time memory-mapping ``trace`` back from a throwaway trace store."""
    import tempfile

    from repro.traces.store import TraceStore

    with tempfile.TemporaryDirectory(prefix="repro_bench_store") as tmp:
        store = TraceStore(tmp)
        store.put("bench", trace)
        best = math.inf
        for _ in range(repeats):
            start = time.perf_counter()
            loaded = store.get("bench")
            pc, vaddr, kind = loaded.columns()
            # Touch every element so the page cache is actually read --
            # otherwise an mmap open is O(1) and the number meaningless.
            checksum = int(pc.sum()) ^ int(vaddr.sum()) ^ int(kind.sum())
            best = min(best, time.perf_counter() - start)
        assert checksum is not None
    return {
        "seconds": round(best, 4),
        "records": len(trace),
        "records_per_sec": round(len(trace) / best, 1),
    }


def measure_figure_campaign(parallel_jobs: int = 2) -> dict:
    """Time one registry figure executed as a single engine batch.

    Runs the Figure 10/11/12 experiment spec (the densest single-core
    sweep: every workload x every comparison scheme) at the quick
    configuration on a fresh in-process cache each time, with the
    persistent result cache off and a prewarmed throwaway trace store (the
    `repro figure` default: workers mmap traces instead of regenerating
    input graphs per process), so serial and parallel runs simulate the
    identical cold point set.
    """
    import tempfile

    from repro.experiments.common import CampaignCache, quick_experiment_config
    from repro.experiments.spec import get_experiment, run_experiment
    from repro.traces.store import TraceStore

    spec = get_experiment("fig10")
    series: dict[str, dict] = {}
    with tempfile.TemporaryDirectory(prefix="repro_bench_figure") as tmp:
        store = TraceStore(tmp)
        runs = (("warmup", 1), ("serial", 1), (f"jobs{parallel_jobs}", parallel_jobs))
        for label, jobs in runs:
            cache = CampaignCache(
                quick_experiment_config(),
                use_result_cache=False,
                trace_store=store,
            )
            start = time.perf_counter()
            run_experiment(spec, cache=cache, jobs=jobs)
            seconds = time.perf_counter() - start
            if label == "warmup":  # fills the trace store, not measured
                continue
            points = cache.engine.simulations_run
            series[label] = {
                "seconds": round(seconds, 4),
                "points": points,
                "points_per_sec": round(points / seconds, 2),
            }
    report = {"experiment": spec.name, **series}
    report["parallel_speedup"] = round(
        series["serial"]["seconds"] / series[f"jobs{parallel_jobs}"]["seconds"], 2
    )
    return report


def measure(accesses: int = 12_000, repeats: int = 3, warmup_fraction: float = 0.25) -> dict:
    """Run every scenario ``repeats`` times and report the best throughput."""
    traces = {}
    construction = {}
    store_load = {}
    results = {}
    core_batch = {}
    from repro.workloads.graphs import clear_graph_memo

    for workload, scheme, prefetcher in SCENARIOS:
        if workload not in traces:
            clear_graph_memo()
            start = time.perf_counter()
            trace = _build_trace(workload, accesses)
            first_build = time.perf_counter() - start
            best = math.inf
            for _ in range(repeats):
                start = time.perf_counter()
                trace = _build_trace(workload, accesses)
                best = min(best, time.perf_counter() - start)
            traces[workload] = trace
            construction[workload] = {
                "seconds": round(best, 4),
                "first_build_seconds": round(first_build, 4),
                "records": len(trace),
                "records_per_sec": round(len(trace) / best, 1),
            }
            store_load[workload] = _measure_store_load(trace, repeats)
        trace = traces[workload]
        name = f"{workload}/{scheme}"
        if prefetcher != "ipcp":
            name = f"{name}/{prefetcher}"
        batch_system = dataclasses.replace(
            cascade_lake_single_core(), sim_core="batch"
        )
        best = math.inf
        batch_best = math.inf
        for _ in range(repeats):
            scenario = build_scenario(scheme, l1d_prefetcher=prefetcher)
            start = time.perf_counter()
            run_single_core(trace, scenario, warmup_fraction=warmup_fraction)
            best = min(best, time.perf_counter() - start)
            # Same trace, same scenario, through the chunk-vectorized core.
            scenario = build_scenario(scheme, l1d_prefetcher=prefetcher)
            start = time.perf_counter()
            run_single_core(trace, scenario, config=batch_system,
                            warmup_fraction=warmup_fraction)
            batch_best = min(batch_best, time.perf_counter() - start)
        results[name] = {
            "seconds": round(best, 4),
            "accesses_per_sec": round(accesses / best, 1),
            "cold_point_seconds": round(
                construction[workload]["seconds"] + best, 4
            ),
        }
        core_batch[name] = {
            "seconds": round(batch_best, 4),
            "accesses_per_sec": round(accesses / batch_best, 1),
            "speedup_vs_scalar": round(best / batch_best, 2),
        }
    return {
        "accesses": accesses,
        "repeats": repeats,
        "scenarios": results,
        "core_batch": core_batch,
        "construction": construction,
        "store_load": store_load,
        "figure_campaign": measure_figure_campaign(),
        "geomean_accesses_per_sec": round(
            _geomean(entry["accesses_per_sec"] for entry in results.values()), 1
        ),
        "core_batch_geomean_accesses_per_sec": round(
            _geomean(
                entry["accesses_per_sec"] for entry in core_batch.values()
            ), 1
        ),
        "batch_speedup_vs_scalar": round(
            _geomean(
                entry["speedup_vs_scalar"] for entry in core_batch.values()
            ), 2
        ),
        "construction_geomean_records_per_sec": round(
            _geomean(entry["records_per_sec"] for entry in construction.values()), 1
        ),
        "store_load_geomean_records_per_sec": round(
            _geomean(entry["records_per_sec"] for entry in store_load.values()), 1
        ),
    }


def host_metadata() -> dict:
    """Where the numbers were measured: interpreter, numpy, CPU, platform.

    Stamped into the report so a ``BENCH_throughput.json`` artifact is
    interpretable on its own -- throughput comparisons across machines or
    toolchain upgrades are meaningless without this block.
    """
    import os
    import platform

    import numpy

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": numpy.__version__,
        "cpu_count": os.cpu_count(),
        "machine": platform.machine(),
        "platform": platform.platform(),
    }


def load_baseline() -> dict | None:
    """Load the committed reference numbers, if present."""
    try:
        with BASELINE_PATH.open("r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--accesses", type=int, default=12_000,
                        help="memory accesses per scenario (default 12000)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="repetitions per scenario; the best time counts")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help="where to write the JSON report")
    parser.add_argument("--check", action="store_true",
                        help="fail when throughput regresses below the "
                             "committed baseline (CI smoke)")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional regression with --check "
                             "(default 0.30)")
    args = parser.parse_args(argv)

    report = measure(accesses=args.accesses, repeats=args.repeats)
    report["host"] = host_metadata()
    baseline = load_baseline()

    print(f"simulator throughput ({args.accesses} accesses, best of {args.repeats}):")
    seed = (baseline or {}).get("seed", {}).get("scenarios", {})
    for name, entry in report["scenarios"].items():
        line = f"  {name:<24} {entry['accesses_per_sec']:>10,.0f} acc/s"
        seed_entry = seed.get(name)
        if seed_entry:
            line += f"  ({entry['accesses_per_sec'] / seed_entry['accesses_per_sec']:.2f}x vs seed)"
        print(line)
    print(f"  {'geomean':<24} {report['geomean_accesses_per_sec']:>10,.0f} acc/s")

    print(f"batch core (--core batch, bit-identical, best of {args.repeats}):")
    for name, entry in report["core_batch"].items():
        print(f"  {name:<24} {entry['accesses_per_sec']:>10,.0f} acc/s"
              f"  ({entry['speedup_vs_scalar']:.2f}x vs scalar)")
    print(f"  {'geomean':<24} "
          f"{report['core_batch_geomean_accesses_per_sec']:>10,.0f} acc/s"
          f"  ({report['batch_speedup_vs_scalar']:.2f}x vs scalar)")

    print(f"trace construction ({args.accesses} memory accesses, best of {args.repeats}):")
    seed_construction = (baseline or {}).get("seed", {}).get("construction", {})
    for name, entry in report["construction"].items():
        line = f"  {name:<24} {entry['records_per_sec']:>10,.0f} rec/s"
        seed_entry = seed_construction.get(name)
        if seed_entry:
            line += f"  ({entry['records_per_sec'] / seed_entry['records_per_sec']:.2f}x vs seed)"
        print(line)
    print(
        f"  {'geomean':<24} "
        f"{report['construction_geomean_records_per_sec']:>10,.0f} rec/s"
    )

    print(f"trace store load (mmap + full column read, best of {args.repeats}):")
    baseline_store = (baseline or {}).get("store_load", {})
    for name, entry in report["store_load"].items():
        line = f"  {name:<24} {entry['records_per_sec']:>10,.0f} rec/s"
        build_entry = report["construction"].get(name)
        if build_entry and entry["seconds"]:
            line += (f"  ({build_entry['seconds'] / entry['seconds']:.2f}x "
                     f"vs rebuild)")
        baseline_entry = baseline_store.get(name)
        if baseline_entry and baseline_entry.get("records_per_sec"):
            line += (f"  ({entry['records_per_sec'] / baseline_entry['records_per_sec']:.2f}x"
                     f" vs baseline)")
        print(line)
    print(
        f"  {'geomean':<24} "
        f"{report['store_load_geomean_records_per_sec']:>10,.0f} rec/s"
    )

    figure = report["figure_campaign"]
    print(f"figure campaign ({figure['experiment']} spec, quick config, "
          f"cold in-process cache):")
    baseline_figure = (baseline or {}).get("figure_campaign", {})
    for label, entry in figure.items():
        if not isinstance(entry, dict):
            continue
        line = (f"  {label:<24} {entry['points_per_sec']:>10,.1f} pts/s "
                f"({entry['points']} points in {entry['seconds']:.2f}s)")
        baseline_entry = baseline_figure.get(label)
        if baseline_entry and baseline_entry.get("points_per_sec"):
            line += (f"  ({entry['points_per_sec'] / baseline_entry['points_per_sec']:.2f}x"
                     f" vs baseline)")
        print(line)
    print(f"  {'parallel speedup':<24} {figure['parallel_speedup']:>10.2f}x")

    construction_ratios = [
        report["construction"][name]["records_per_sec"] / entry["records_per_sec"]
        for name, entry in seed_construction.items()
        if name in report["construction"] and entry.get("records_per_sec")
    ]
    if construction_ratios:
        speedup = _geomean(construction_ratios)
        report["construction_speedup_vs_seed"] = round(speedup, 2)
        print(f"  construction geomean speedup vs seed: {speedup:.2f}x")

    # Campaign-point wall time on a cold result cache: steady-state trace
    # build + simulate.  The seed reference rebuilt its input graph on every
    # point, so this ratio credits the graph memo; the one-time cold build
    # is reported separately as construction.first_build_seconds.
    cold_ratios = []
    for name, entry in report["scenarios"].items():
        seed_entry = seed.get(name)
        if seed_entry and seed_entry.get("cold_point_seconds"):
            cold_ratios.append(
                seed_entry["cold_point_seconds"] / entry["cold_point_seconds"]
            )
    if cold_ratios:
        speedup = _geomean(cold_ratios)
        report["cold_point_speedup_vs_seed"] = round(speedup, 2)
        print(f"  campaign point (steady-state build+sim, cold result cache) "
              f"geomean speedup vs seed: {speedup:.2f}x")

    if baseline:
        reference = baseline.get("geomean_accesses_per_sec")
        seed_geomean = (baseline.get("seed") or {}).get("geomean_accesses_per_sec")
        if seed_geomean:
            speedup = report["geomean_accesses_per_sec"] / seed_geomean
            report["speedup_vs_seed"] = round(speedup, 2)
            print(f"  speedup vs seed geomean: {speedup:.2f}x")
        if args.check and reference:
            # Normalise the cross-machine comparison by the hash-loop
            # calibration score recorded alongside the baseline.
            baseline_score = baseline.get("calibration_score")
            if baseline_score:
                score = calibration_score()
                report["calibration_score"] = round(score, 1)
                scale = score / baseline_score
                print(f"  machine calibration: {scale:.2f}x the baseline machine")
            else:
                scale = 1.0
            floor = (1.0 - args.tolerance) * reference * scale
            if report["geomean_accesses_per_sec"] < floor:
                print(
                    f"THROUGHPUT REGRESSION: geomean "
                    f"{report['geomean_accesses_per_sec']:,.0f} acc/s is below "
                    f"{floor:,.0f} acc/s "
                    f"({args.tolerance:.0%} under the committed baseline "
                    f"{reference:,.0f} scaled by machine speed {scale:.2f}x)"
                )
                Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
                return 1
            print(
                f"throughput check passed: geomean >= {floor:,.0f} acc/s "
                f"(baseline {reference:,.0f}, machine scale {scale:.2f}x, "
                f"tolerance {args.tolerance:.0%})"
            )

    if args.check and report["batch_speedup_vs_scalar"] < 1.0:
        # Same machine, same run: the batch core being slower than the
        # scalar reference is a regression regardless of hardware.
        print(
            f"BATCH CORE REGRESSION: batch geomean is "
            f"{report['batch_speedup_vs_scalar']:.2f}x the scalar geomean "
            f"(must be >= 1.0x)"
        )
        Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
        return 1
    if args.check:
        print(
            f"batch core check passed: {report['batch_speedup_vs_scalar']:.2f}x "
            f"the scalar geomean (floor 1.0x)"
        )

    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"report written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
