"""Simulator throughput benchmark: simulated memory-accesses per second.

Measures the hot-path speed of the simulator itself (not the modelled
system) on the quick configuration: one cache-hostile GAP workload and one
SPEC-like workload, each under the baseline scenario (prefetchers only) and
under TLP (the heaviest scheme: FLP + SLP perceptrons on every access).

Usage::

    PYTHONPATH=src python benchmarks/bench_throughput.py
    PYTHONPATH=src python benchmarks/bench_throughput.py --check

Writes ``BENCH_throughput.json`` with per-scenario accesses/second plus the
geometric mean, and compares against the committed reference numbers in
``benchmarks/throughput_baseline.json`` (recorded on the CI reference
machine; the ``seed`` block preserves the pre-optimization numbers this PR's
speedup is measured against).  With ``--check`` the script exits non-zero
when the geometric mean regresses more than ``--tolerance`` (default 30%)
below the committed baseline -- the CI throughput smoke.
"""

from __future__ import annotations

import argparse
import json
import math
import time
from pathlib import Path

from repro.sim.scenarios import build_scenario
from repro.sim.single_core import run_single_core
from repro.workloads.gap import gap_trace
from repro.workloads.spec_like import spec_like_trace

#: (workload, scheme) scenarios measured by the benchmark.
SCENARIOS = (
    ("bfs.urand", "baseline"),
    ("bfs.urand", "tlp"),
    ("spec.mcf_like", "baseline"),
    ("spec.mcf_like", "tlp"),
)

BASELINE_PATH = Path(__file__).resolve().parent / "throughput_baseline.json"
DEFAULT_OUTPUT = "BENCH_throughput.json"


def calibration_score(iterations: int = 400_000) -> float:
    """Machine-speed score: hash-loop iterations per second.

    The committed baseline records the score of the machine it was measured
    on; ``--check`` scales the baseline by the ratio of the current score to
    the recorded one, so a slower CI runner is held to a proportionally
    lower absolute floor instead of failing on hardware variance.  The loop
    mirrors the simulator's real hot path (integer hashing).
    """
    from repro.common.hashing import jenkins32

    best = math.inf
    for _ in range(3):
        start = time.perf_counter()
        value = 0
        for i in range(iterations):
            value ^= jenkins32(i)
        best = min(best, time.perf_counter() - start)
    return iterations / best


def _build_trace(workload: str, accesses: int):
    if workload.startswith("spec."):
        return spec_like_trace(workload[len("spec."):], num_memory_accesses=accesses)
    kernel, _, graph = workload.partition(".")
    return gap_trace(kernel, graph=graph, scale="medium", max_memory_accesses=accesses)


def measure(accesses: int = 12_000, repeats: int = 3, warmup_fraction: float = 0.25) -> dict:
    """Run every scenario ``repeats`` times and report the best throughput."""
    traces = {}
    results = {}
    for workload, scheme in SCENARIOS:
        if workload not in traces:
            traces[workload] = _build_trace(workload, accesses)
        trace = traces[workload]
        best = math.inf
        for _ in range(repeats):
            scenario = build_scenario(scheme, l1d_prefetcher="ipcp")
            start = time.perf_counter()
            run_single_core(trace, scenario, warmup_fraction=warmup_fraction)
            best = min(best, time.perf_counter() - start)
        results[f"{workload}/{scheme}"] = {
            "seconds": round(best, 4),
            "accesses_per_sec": round(accesses / best, 1),
        }
    rates = [entry["accesses_per_sec"] for entry in results.values()]
    geomean = math.exp(sum(math.log(rate) for rate in rates) / len(rates))
    return {
        "accesses": accesses,
        "repeats": repeats,
        "scenarios": results,
        "geomean_accesses_per_sec": round(geomean, 1),
    }


def load_baseline() -> dict | None:
    """Load the committed reference numbers, if present."""
    try:
        with BASELINE_PATH.open("r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--accesses", type=int, default=12_000,
                        help="memory accesses per scenario (default 12000)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="repetitions per scenario; the best time counts")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help="where to write the JSON report")
    parser.add_argument("--check", action="store_true",
                        help="fail when throughput regresses below the "
                             "committed baseline (CI smoke)")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional regression with --check "
                             "(default 0.30)")
    args = parser.parse_args(argv)

    report = measure(accesses=args.accesses, repeats=args.repeats)
    baseline = load_baseline()

    print(f"simulator throughput ({args.accesses} accesses, best of {args.repeats}):")
    seed = (baseline or {}).get("seed", {}).get("scenarios", {})
    for name, entry in report["scenarios"].items():
        line = f"  {name:<24} {entry['accesses_per_sec']:>10,.0f} acc/s"
        seed_entry = seed.get(name)
        if seed_entry:
            line += f"  ({entry['accesses_per_sec'] / seed_entry['accesses_per_sec']:.2f}x vs seed)"
        print(line)
    print(f"  {'geomean':<24} {report['geomean_accesses_per_sec']:>10,.0f} acc/s")

    if baseline:
        reference = baseline.get("geomean_accesses_per_sec")
        seed_geomean = (baseline.get("seed") or {}).get("geomean_accesses_per_sec")
        if seed_geomean:
            speedup = report["geomean_accesses_per_sec"] / seed_geomean
            report["speedup_vs_seed"] = round(speedup, 2)
            print(f"  speedup vs seed geomean: {speedup:.2f}x")
        if args.check and reference:
            # Normalise the cross-machine comparison by the hash-loop
            # calibration score recorded alongside the baseline.
            baseline_score = baseline.get("calibration_score")
            if baseline_score:
                score = calibration_score()
                report["calibration_score"] = round(score, 1)
                scale = score / baseline_score
                print(f"  machine calibration: {scale:.2f}x the baseline machine")
            else:
                scale = 1.0
            floor = (1.0 - args.tolerance) * reference * scale
            if report["geomean_accesses_per_sec"] < floor:
                print(
                    f"THROUGHPUT REGRESSION: geomean "
                    f"{report['geomean_accesses_per_sec']:,.0f} acc/s is below "
                    f"{floor:,.0f} acc/s "
                    f"({args.tolerance:.0%} under the committed baseline "
                    f"{reference:,.0f} scaled by machine speed {scale:.2f}x)"
                )
                Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
                return 1
            print(
                f"throughput check passed: geomean >= {floor:,.0f} acc/s "
                f"(baseline {reference:,.0f}, machine scale {scale:.2f}x, "
                f"tolerance {args.tolerance:.0%})"
            )

    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"report written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
