"""Benchmark harness configuration.

Each ``bench_*`` file regenerates one table or figure of the paper.  All
files share a process-wide :class:`~repro.experiments.common.CampaignCache`
so that a (workload, scheme, prefetcher) simulation is only run once per
``pytest benchmarks/`` invocation.
"""

import pytest

from repro.experiments.common import get_global_cache


@pytest.fixture(scope="session")
def campaign():
    """The shared campaign cache used by every benchmark."""
    return get_global_cache()


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
