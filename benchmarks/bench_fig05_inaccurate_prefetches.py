"""Figure 5: where inaccurate L1D prefetches are served (IPCP and Berti)."""

from conftest import run_once

from repro.experiments import fig05_06_prefetch_location


def test_fig05_inaccurate_prefetch_location(benchmark, campaign):
    result = run_once(benchmark, lambda: fig05_06_prefetch_location.run(cache=campaign))
    print()
    print("Figure 5: inaccurate L1D prefetches by serving level (PPKI)")
    print(fig05_06_prefetch_location.format_table(result))
    for prefetcher, averages in result.inaccurate_average.items():
        assert sum(averages.values()) >= 0.0
    # Paper shape: a large share of the DRAM-served prefetches is inaccurate.
    assert result.dram_inaccuracy_ratio["ipcp"] > 0.3
