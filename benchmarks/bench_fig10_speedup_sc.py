"""Figure 10: single-core speedups of PPF / Hermes / Hermes+PPF / TLP."""

from conftest import run_once

from repro.experiments import fig10_12_singlecore


def test_fig10_single_core_speedup(benchmark, campaign):
    result = run_once(benchmark, lambda: fig10_12_singlecore.run(cache=campaign))
    print()
    print("Figure 10: single-core speedup over baseline (geomean)")
    print(fig10_12_singlecore.format_table(result))
    for prefetcher in campaign.config.l1d_prefetchers:
        speedups = result.geomean_speedup[prefetcher]
        # Paper shape: TLP outperforms Hermes and Hermes+PPF.
        assert speedups["tlp"] >= speedups["hermes"] - 1.0
        assert speedups["tlp"] >= speedups["hermes_ppf"] - 1.0
