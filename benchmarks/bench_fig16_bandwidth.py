"""Figure 16: DRAM bandwidth sensitivity of the multi-core results."""

from conftest import run_once

from repro.experiments import fig16_bandwidth


def test_fig16_bandwidth_sensitivity(benchmark, campaign):
    result = run_once(
        benchmark,
        lambda: fig16_bandwidth.run(
            cache=campaign,
            bandwidths=(1.6, 3.2, 12.8, 25.6),
            schemes=("hermes", "tlp"),
        ),
    )
    print()
    print("Figure 16: bandwidth sensitivity (multi-core, IPCP)")
    print(fig16_bandwidth.format_table(result))
    # Paper shape: TLP helps most when bandwidth is scarce, and it reduces
    # DRAM transactions at every bandwidth point relative to Hermes.
    for bandwidth, changes in result.dram_change.items():
        assert changes["tlp"] <= changes["hermes"] + 1.0
