"""Figure 17: designs enhanced with TLP's storage budget."""

from conftest import run_once

from repro.experiments import fig17_storage_budget


def test_fig17_storage_budget_designs(benchmark, campaign):
    result = run_once(benchmark, lambda: fig17_storage_budget.run(cache=campaign))
    print()
    print("Figure 17: +7KB designs vs TLP (geomean speedup %)")
    print(fig17_storage_budget.format_table(result))
    for prefetcher, speedups in result.geomean_speedup.items():
        # Paper shape: simply giving Hermes TLP's storage budget does not
        # reach TLP (enlarged prefetcher tables gain nothing by themselves).
        assert speedups["tlp"] >= speedups["hermes_7kb"] - 1.0
