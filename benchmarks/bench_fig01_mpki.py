"""Figure 1: MPKI of L1D/L2C/LLC across SPEC and GAP workloads."""

from conftest import run_once

from repro.experiments import fig01_mpki


def test_fig01_cache_mpki(benchmark, campaign):
    result = run_once(benchmark, lambda: fig01_mpki.run(cache=campaign))
    print()
    print("Figure 1: cache MPKI (baseline, IPCP)")
    print(fig01_mpki.format_table(result))
    # Paper shape: the miss rate shrinks down the hierarchy, and every
    # selected workload is memory intensive (LLC MPKI > 1 on average).
    assert result.overall["L1D"] >= result.overall["L2C"] >= result.overall["LLC"]
    assert result.overall["LLC"] > 1.0
