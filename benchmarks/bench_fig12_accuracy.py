"""Figure 12: L1D prefetcher accuracy under PPF / Hermes / Hermes+PPF / TLP."""

from conftest import run_once

from repro.experiments import fig10_12_singlecore


def test_fig12_prefetcher_accuracy(benchmark, campaign):
    result = run_once(benchmark, lambda: fig10_12_singlecore.run(cache=campaign))
    print()
    print("Figure 12: L1D prefetcher accuracy under each scheme (avg %)")
    print(fig10_12_singlecore.format_table(result))
    for prefetcher in campaign.config.l1d_prefetchers:
        accuracy = result.prefetch_accuracy[prefetcher]
        baseline = result.baseline_accuracy[prefetcher]
        # Paper shape: TLP does not degrade the prefetcher's accuracy (it
        # raises it on the irregular workloads); at this reduced scale we
        # assert it stays within a small margin of the baseline and Hermes.
        assert accuracy["tlp"] >= baseline - 10.0
        assert accuracy["tlp"] >= accuracy["hermes"] - 10.0
