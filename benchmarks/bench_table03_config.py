"""Table III: baseline system configuration (asserted, not simulated)."""

from conftest import run_once

from repro.common.config import cascade_lake_multi_core, cascade_lake_single_core


def test_table03_system_configuration(benchmark):
    system = run_once(benchmark, cascade_lake_single_core)
    print()
    print("Table III: baseline system configuration")
    print(f"  core: {system.core.width}-wide, ROB {system.core.rob_size}, "
          f"{system.core.frequency_ghz} GHz")
    print(f"  L1D: {system.l1d.size_bytes // 1024} KB, {system.l1d.associativity}-way, "
          f"{system.l1d.latency} cc")
    print(f"  L2C: {system.l2c.size_bytes // 1024} KB, {system.l2c.associativity}-way, "
          f"{system.l2c.latency} cc")
    print(f"  LLC: {system.llc.size_bytes // 1024} KB/core, {system.llc.associativity}-way, "
          f"{system.llc.latency} cc")
    print(f"  DRAM: {system.dram.bandwidth_gbps} GB/s per core (single-core)")
    assert system.core.width == 4
    assert system.core.rob_size == 224
    assert system.l1d.size_bytes == 32 * 1024
    assert system.l2c.size_bytes == 1024 * 1024
    assert system.llc.size_bytes == 1408 * 1024
    assert cascade_lake_multi_core(4).dram.bandwidth_gbps == 3.2 * 4
