"""Graph-analytics study: every GAP kernel under baseline / Hermes / TLP.

The paper's motivation is that graph-processing workloads (GAP) have huge,
irregular working sets that defeat the cache hierarchy.  This example sweeps
the six GAP kernels (BFS, PR, CC, BC, TC, SSSP) over a uniform-random input
graph and reports, per kernel, the DRAM-transaction overhead of Hermes and
the DRAM-transaction reduction of TLP.

Run with::

    python examples/graph_analytics_study.py
"""

from __future__ import annotations

from repro.api import (
    GAP_KERNELS,
    build_scenario,
    gap_trace,
    percent_change,
    run_single_core,
    speedup_percent,
)


def main() -> None:
    print("GAP kernel study (urand graph, medium scale)")
    print(f"{'kernel':<7} {'LLC MPKI':>9} {'Hermes dIPC':>12} {'Hermes dDRAM':>13} "
          f"{'TLP dIPC':>9} {'TLP dDRAM':>10}")
    for kernel in sorted(GAP_KERNELS):
        trace = gap_trace(kernel, graph="urand", scale="medium", max_memory_accesses=8_000)
        baseline = run_single_core(trace, build_scenario("baseline"))
        hermes = run_single_core(trace, build_scenario("hermes"))
        tlp = run_single_core(trace, build_scenario("tlp"))
        print(
            f"{kernel:<7} {baseline.mpki_by_level['LLC']:>9.1f} "
            f"{speedup_percent(hermes.ipc, baseline.ipc):>11.1f}% "
            f"{percent_change(hermes.dram_transactions, baseline.dram_transactions):>12.1f}% "
            f"{speedup_percent(tlp.ipc, baseline.ipc):>8.1f}% "
            f"{percent_change(tlp.dram_transactions, baseline.dram_transactions):>9.1f}%"
        )
    print()
    print(
        "Kernels with irregular, DRAM-bound access patterns (BFS/BC/SSSP/PR on\n"
        "uniform graphs) are where TLP's prefetch filtering removes the most\n"
        "DRAM traffic; kernels with small hot working sets (CC/TC on power-law\n"
        "graphs) are cache friendly and all schemes behave similarly."
    )


if __name__ == "__main__":
    main()
