"""Bandwidth sensitivity: a 4-core mix under different per-core DRAM budgets.

Reproduces the spirit of the paper's Figure 16 on one 4-core workload mix:
as the per-core DRAM bandwidth shrinks from 12.8 GB/s to 1.6 GB/s, the cost
of useless DRAM traffic (wrong speculative requests, inaccurate prefetches)
grows, and TLP's advantage over Hermes widens.

Run with::

    python examples/bandwidth_sensitivity.py
"""

from __future__ import annotations

from repro.api import (
    build_scenario,
    cascade_lake_multi_core,
    gap_trace,
    run_multicore_mix,
    spec_like_trace,
)


def main() -> None:
    print("Building a heterogeneous 4-core mix (2x BFS, mcf-like, omnetpp-like)...")
    traces = [
        gap_trace("bfs", graph="urand", scale="medium", max_memory_accesses=5_000),
        gap_trace("bfs", graph="urand", scale="medium", max_memory_accesses=5_000, seed=11),
        spec_like_trace("mcf_like", num_memory_accesses=5_000),
        spec_like_trace("omnetpp_like", num_memory_accesses=5_000),
    ]

    print(f"{'GB/s per core':>13} {'scheme':<9} {'sum IPC':>8} {'DRAM tx':>9}")
    for bandwidth in (1.6, 3.2, 6.4, 12.8):
        system = cascade_lake_multi_core(4).with_dram_bandwidth(bandwidth)
        for scheme in ("baseline", "hermes", "tlp"):
            result = run_multicore_mix(
                traces, build_scenario(scheme), config=system, mix_name=f"mix@{bandwidth}"
            )
            print(
                f"{bandwidth:>13.1f} {scheme:<9} {sum(result.ipcs):>8.3f} "
                f"{result.dram_transactions:>9d}"
            )
    print()
    print(
        "Expected shape (paper, Figure 16): TLP's advantage over Hermes and the\n"
        "baseline is largest at 1.6-3.2 GB/s per core and narrows as bandwidth\n"
        "becomes plentiful, while its DRAM-transaction reduction persists."
    )


if __name__ == "__main__":
    main()
