"""Extending the library: plug a custom prefetch filter into the hierarchy.

The SLP component of TLP is just one implementation of the
:class:`repro.prefetchers.base.PrefetchFilter` interface.  This example shows
how a downstream user can experiment with their own filtering policy -- here,
a simple confidence-threshold filter that drops low-confidence IPCP
candidates -- and compare it against SLP on the same workload.

Run with::

    python examples/custom_prefetch_filter.py
"""

from __future__ import annotations

from repro.api import (
    FilterDecision,
    IPCPPrefetcher,
    MemoryHierarchy,
    PrefetchFilter,
    PrefetchRequest,
    SecondLevelPerceptron,
    SPPPrefetcher,
    build_scenario,
    cascade_lake_single_core,
    run_single_core,
    spec_like_trace,
)


class ConfidenceThresholdFilter(PrefetchFilter):
    """Drop every candidate whose prefetcher confidence is below a threshold."""

    name = "confidence-threshold"

    def __init__(self, minimum_confidence: float = 0.5) -> None:
        self.minimum_confidence = minimum_confidence

    def consult(
        self,
        request: PrefetchRequest,
        paddr: int,
        trigger_offchip_prediction: bool,
        cycle: int,
    ) -> FilterDecision:
        return FilterDecision(issue=request.confidence >= self.minimum_confidence)

    def train(self, metadata: dict, outcome: bool) -> None:
        return None


def run_with_filter(trace, prefetch_filter, label: str) -> None:
    hierarchy = MemoryHierarchy(
        cascade_lake_single_core(),
        l1d_prefetcher=IPCPPrefetcher(),
        l2_prefetcher=SPPPrefetcher(),
        l1d_prefetch_filter=prefetch_filter,
    )
    result = run_single_core(trace, build_scenario("baseline"), hierarchy=hierarchy)
    print(
        f"{label:<24} ipc={result.ipc:.3f} dram={result.dram_transactions:>6d} "
        f"issued={result.l1d_prefetches_issued:>5d} "
        f"filtered={result.l1d_prefetches_filtered:>5d} "
        f"accuracy={100 * result.l1d_prefetch_accuracy:5.1f}%"
    )


def main() -> None:
    trace = spec_like_trace("omnetpp_like", num_memory_accesses=10_000)
    print(f"Workload: {trace.summary()}")
    print()
    run_with_filter(trace, None, "no filter (baseline)")
    run_with_filter(trace, ConfidenceThresholdFilter(0.5), "confidence >= 0.5")
    run_with_filter(trace, SecondLevelPerceptron(), "SLP (off-chip prediction)")
    print()
    print(
        "SLP filters by *predicted off-chip service* rather than by the\n"
        "prefetcher's own confidence, which is what lets it remove the useless\n"
        "DRAM-bound prefetches that a static confidence threshold keeps."
    )


if __name__ == "__main__":
    main()
