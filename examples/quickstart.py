"""Quickstart: compare TLP against Hermes on one graph workload.

Builds a BFS trace over a synthetic power-law graph, runs it through the
baseline system (IPCP + SPP, no off-chip prediction), through Hermes, and
through TLP, and prints the paper's headline metrics: speedup over the
baseline, change in DRAM transactions, and L1D prefetcher accuracy.

The simulations go through the campaign engine's persistent result cache
(``.repro_cache/`` by default), so a second invocation of this script skips
them entirely.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.api import CampaignCache, ExperimentConfig

WORKLOAD = "bfs.kron"
ACCESSES = 12_000


def main() -> None:
    # warmup_fraction pinned to the simulation driver's default so the
    # numbers match what this script printed before it used the engine.
    campaign = CampaignCache(
        ExperimentConfig(memory_accesses=ACCESSES, warmup_fraction=0.2)
    )
    print("Generating a BFS trace over a synthetic power-law (kron-like) graph...")
    trace = campaign.trace(WORKLOAD)
    print(f"  trace: {trace.summary()}")

    results = {}
    for scheme in ("baseline", "hermes", "tlp"):
        print(f"Simulating scheme {scheme!r}...")
        results[scheme] = campaign.single_core(WORKLOAD, scheme)
    engine = campaign.engine
    if engine.cache_hits:
        print(f"  ({engine.cache_hits} of {len(results)} runs served from the "
              f"result cache)")

    baseline = results["baseline"]
    print()
    print(f"{'scheme':<10} {'IPC':>7} {'speedup':>9} {'DRAM tx':>9} {'DRAM chg':>9} {'pf acc':>7}")
    for scheme, result in results.items():
        speedup = 100.0 * (result.ipc / baseline.ipc - 1.0)
        dram_change = 100.0 * (
            result.dram_transactions / baseline.dram_transactions - 1.0
        )
        print(
            f"{scheme:<10} {result.ipc:>7.3f} {speedup:>8.1f}% "
            f"{result.dram_transactions:>9d} {dram_change:>8.1f}% "
            f"{100 * result.l1d_prefetch_accuracy:>6.1f}%"
        )
    print()
    print(
        "Expected shape (paper, Figures 10-12): TLP speeds the workload up while\n"
        "*reducing* DRAM transactions and raising prefetcher accuracy; Hermes\n"
        "gains performance but increases DRAM transactions."
    )


if __name__ == "__main__":
    main()
