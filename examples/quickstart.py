"""Quickstart: compare TLP against Hermes on one graph workload.

Builds a BFS trace over a synthetic power-law graph, runs it through the
baseline system (IPCP + SPP, no off-chip prediction), through Hermes, and
through TLP, and prints the paper's headline metrics: speedup over the
baseline, change in DRAM transactions, and L1D prefetcher accuracy.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import build_scenario, run_single_core
from repro.workloads import gap_trace


def main() -> None:
    print("Generating a BFS trace over a synthetic power-law (kron-like) graph...")
    trace = gap_trace("bfs", graph="kron", scale="medium", max_memory_accesses=12_000)
    print(f"  trace: {trace.summary()}")

    results = {}
    for scheme in ("baseline", "hermes", "tlp"):
        print(f"Simulating scheme {scheme!r}...")
        results[scheme] = run_single_core(trace, build_scenario(scheme))

    baseline = results["baseline"]
    print()
    print(f"{'scheme':<10} {'IPC':>7} {'speedup':>9} {'DRAM tx':>9} {'DRAM chg':>9} {'pf acc':>7}")
    for scheme, result in results.items():
        speedup = 100.0 * (result.ipc / baseline.ipc - 1.0)
        dram_change = 100.0 * (
            result.dram_transactions / baseline.dram_transactions - 1.0
        )
        print(
            f"{scheme:<10} {result.ipc:>7.3f} {speedup:>8.1f}% "
            f"{result.dram_transactions:>9d} {dram_change:>8.1f}% "
            f"{100 * result.l1d_prefetch_accuracy:>6.1f}%"
        )
    print()
    print(
        "Expected shape (paper, Figures 10-12): TLP speeds the workload up while\n"
        "*reducing* DRAM transactions and raising prefetcher accuracy; Hermes\n"
        "gains performance but increases DRAM transactions."
    )


if __name__ == "__main__":
    main()
